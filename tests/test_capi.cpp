// Tests: the C interface (the paper's "usable from any C/C++ code" claim).
#include <gtest/gtest.h>

#include <complex>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "capi/bkr_c.h"
#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

// Convert a CsrMatrix<double> into the C arrays.
struct CArrays {
  std::vector<int64_t> rowptr, colind;
  std::vector<double> values;
};

CArrays to_c(const CsrMatrix<double>& a) {
  CArrays out;
  out.rowptr.assign(a.rowptr().begin(), a.rowptr().end());
  out.colind.assign(a.colind().begin(), a.colind().end());
  out.values = a.values();
  return out;
}

TEST(CApi, DefaultsArePopulated) {
  bkr_options opts;
  bkr_options_default(&opts);
  EXPECT_EQ(opts.restart, 30);
  EXPECT_EQ(opts.recycle, 10);
  EXPECT_DOUBLE_EQ(opts.tol, 1e-8);
  EXPECT_EQ(opts.side, BKR_SIDE_RIGHT);
  EXPECT_EQ(opts.no_recovery, 0);
}

TEST(CApi, ResultCarriesStatusTaxonomy) {
  const auto a = poisson2d(8, 8);
  const auto arrays = to_c(a);
  bkr_matrix* mat = bkr_matrix_create(a.rows(), arrays.rowptr.data(), arrays.colind.data(),
                                      arrays.values.data());
  ASSERT_NE(mat, nullptr);
  const auto b = poisson2d_rhs(8, 8, 0.1);
  std::vector<double> x(b.size(), 0.0);
  bkr_options opts;
  bkr_options_default(&opts);
  bkr_result result;
  ASSERT_EQ(bkr_gmres(mat, b.data(), x.data(), &opts, &result), 0);
  EXPECT_EQ(result.converged, 1);
  EXPECT_EQ(result.status, BKR_STATUS_CONVERGED);
  EXPECT_EQ(result.recoveries, 0);
  // Unreachable tolerance with a tiny budget: the refined status says why.
  opts.tol = 1e-15;
  opts.max_iterations = 5;
  std::fill(x.begin(), x.end(), 0.0);
  ASSERT_EQ(bkr_gmres(mat, b.data(), x.data(), &opts, &result), 0);
  EXPECT_EQ(result.converged, 0);
  EXPECT_EQ(result.status, BKR_STATUS_MAX_ITERATIONS);
  // no_recovery is accepted and still solves the healthy system.
  bkr_options_default(&opts);
  opts.no_recovery = 1;
  std::fill(x.begin(), x.end(), 0.0);
  ASSERT_EQ(bkr_gmres(mat, b.data(), x.data(), &opts, &result), 0);
  EXPECT_EQ(result.status, BKR_STATUS_CONVERGED);
  bkr_matrix_destroy(mat);
}

TEST(CApi, RejectsInvalidMatrices) {
  EXPECT_EQ(bkr_matrix_create(0, nullptr, nullptr, nullptr), nullptr);
  const int64_t rowptr[3] = {0, 1, 2};
  const int64_t bad_col[2] = {0, 5};  // out of range
  const double vals[2] = {1.0, 1.0};
  EXPECT_EQ(bkr_matrix_create(2, rowptr, bad_col, vals), nullptr);
}

TEST(CApi, GmresSolvesPoisson) {
  const auto a = poisson2d(12, 12);
  const auto arrays = to_c(a);
  bkr_matrix* m =
      bkr_matrix_create(a.rows(), arrays.rowptr.data(), arrays.colind.data(), arrays.values.data());
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(bkr_matrix_rows(m), a.rows());
  const auto b = poisson2d_rhs(12, 12, 0.1);
  std::vector<double> x(b.size(), 0.0);
  bkr_options opts;
  bkr_options_default(&opts);
  opts.restart = 60;
  bkr_result result{};
  ASSERT_EQ(bkr_gmres(m, b.data(), x.data(), &opts, &result), 0);
  EXPECT_EQ(result.converged, 1);
  EXPECT_GT(result.iterations, 5);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
  bkr_matrix_destroy(m);
}

TEST(CApi, GcroDrSequenceRecycles) {
  const auto a = poisson2d(16, 16);
  const auto arrays = to_c(a);
  bkr_matrix* m =
      bkr_matrix_create(a.rows(), arrays.rowptr.data(), arrays.colind.data(), arrays.values.data());
  ASSERT_NE(m, nullptr);
  bkr_options opts;
  bkr_options_default(&opts);
  opts.restart = 25;
  opts.recycle = 8;
  opts.same_system = 1;
  bkr_gcrodr* solver = bkr_gcrodr_create(&opts);
  ASSERT_NE(solver, nullptr);
  std::vector<int64_t> iters;
  for (const double nu : kPoissonNus) {
    const auto b = poisson2d_rhs(16, 16, nu);
    std::vector<double> x(b.size(), 0.0);
    bkr_result result{};
    ASSERT_EQ(bkr_gcrodr_solve(solver, m, b.data(), x.data(), /*new_matrix=*/0, &result), 0);
    EXPECT_EQ(result.converged, 1);
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
    iters.push_back(result.iterations);
  }
  EXPECT_LT(iters[1], iters[0]);  // recycling across the C boundary
  bkr_gcrodr_destroy(solver);
  bkr_matrix_destroy(m);
}

TEST(CApi, ComplexGmresSolvesMaxwell) {
  MaxwellConfig cfg;
  cfg.n = 5;
  cfg.wavelengths = 0.8;
  cfg.loss = 0.5;
  const auto prob = maxwell3d(cfg);
  const auto& a = prob.matrix;
  std::vector<int64_t> rowptr(a.rowptr().begin(), a.rowptr().end());
  std::vector<int64_t> colind(a.colind().begin(), a.colind().end());
  // std::complex<double> is layout-compatible with interleaved doubles.
  const auto* values = reinterpret_cast<const double*>(a.values().data());
  bkr_zmatrix* m = bkr_zmatrix_create(a.rows(), rowptr.data(), colind.data(), values);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(bkr_zmatrix_rows(m), a.rows());
  const auto b = antenna_rhs(prob, 0, 4);
  std::vector<std::complex<double>> x(b.size(), std::complex<double>(0));
  bkr_options opts;
  bkr_options_default(&opts);
  opts.restart = 200;
  opts.max_iterations = 2000;
  bkr_result result{};
  ASSERT_EQ(bkr_zgmres(m, reinterpret_cast<const double*>(b.data()),
                       reinterpret_cast<double*>(x.data()), &opts, &result),
            0);
  EXPECT_EQ(result.converged, 1);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-6);
  bkr_zmatrix_destroy(m);
}

TEST(CApi, TraceAttachesAndExports) {
  const auto a = poisson2d(12, 12);
  const auto arrays = to_c(a);
  bkr_matrix* m =
      bkr_matrix_create(a.rows(), arrays.rowptr.data(), arrays.colind.data(), arrays.values.data());
  ASSERT_NE(m, nullptr);
  bkr_trace* trace = bkr_trace_create();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(bkr_trace_solve_count(trace), 0);
  bkr_options opts;
  bkr_options_default(&opts);
  opts.restart = 60;
  opts.trace = trace;
  const auto b = poisson2d_rhs(12, 12, 0.1);
  std::vector<double> x(b.size(), 0.0);
  bkr_result result{};
  ASSERT_EQ(bkr_gmres(m, b.data(), x.data(), &opts, &result), 0);
  EXPECT_EQ(result.converged, 1);
  EXPECT_EQ(bkr_trace_solve_count(trace), 1);
  // The accounting contract is visible through the C surface.
  EXPECT_EQ(bkr_trace_phase_count(trace, BKR_PHASE_REDUCTION), result.reductions);
  EXPECT_EQ(bkr_trace_phase_count(trace, BKR_PHASE_SPMM), result.operator_applies);
  EXPECT_EQ(bkr_trace_phase_count(trace, BKR_PHASE_PRECOND), result.precond_applies);
  EXPECT_GE(bkr_trace_phase_seconds(trace, BKR_PHASE_SPMM), 0.0);
  // Out-of-range phases answer zero instead of reading out of bounds.
  EXPECT_EQ(bkr_trace_phase_count(trace, static_cast<bkr_phase>(99)), 0);
  const char* json_path = "bkr_capi_trace_test.json";
  EXPECT_EQ(bkr_trace_write_json(trace, json_path), 0);
  std::ifstream f(json_path);
  std::string doc((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("\"schema\":\"bkr-trace-1\""), std::string::npos);
  std::remove(json_path);
  bkr_trace_clear(trace);
  EXPECT_EQ(bkr_trace_solve_count(trace), 0);
  // Null trace handles are tolerated everywhere.
  EXPECT_EQ(bkr_trace_solve_count(nullptr), 0);
  EXPECT_NE(bkr_trace_write_json(nullptr, json_path), 0);
  bkr_trace_destroy(nullptr);
  bkr_trace_destroy(trace);
  bkr_matrix_destroy(m);
}

TEST(CApi, NullArgumentsFailGracefully) {
  bkr_result result{};
  EXPECT_NE(bkr_gmres(nullptr, nullptr, nullptr, nullptr, &result), 0);
  EXPECT_NE(bkr_gcrodr_solve(nullptr, nullptr, nullptr, nullptr, 0, &result), 0);
  EXPECT_NE(bkr_session_solve(nullptr, nullptr, nullptr, 1, &result), 0);
  EXPECT_EQ(bkr_session_create(nullptr, nullptr, nullptr), nullptr);
  bkr_matrix_destroy(nullptr);   // must be no-ops
  bkr_gcrodr_destroy(nullptr);
  bkr_zmatrix_destroy(nullptr);
  bkr_zgcrodr_destroy(nullptr);
  bkr_session_destroy(nullptr);
  bkr_zsession_destroy(nullptr);
  bkr_cache_destroy(nullptr);
  bkr_cache_clear(nullptr);
  EXPECT_EQ(bkr_cache_hits(nullptr), 0);
  EXPECT_EQ(bkr_session_solves(nullptr), 0);
  EXPECT_EQ(bkr_session_warm_started(nullptr), 0);
  EXPECT_NE(bkr_cache_save(nullptr, "x"), 0);
  EXPECT_NE(bkr_cache_load(nullptr, "x"), 0);
}

TEST(CApi, SessionDefaultsAndMethodField) {
  bkr_options opts;
  bkr_options_default(&opts);
  EXPECT_EQ(opts.method, BKR_METHOD_GMRES);
  // An out-of-range method is rejected at create, not at solve.
  const auto a = poisson2d(6, 6);
  const auto arrays = to_c(a);
  bkr_matrix* m = bkr_matrix_create(a.rows(), arrays.rowptr.data(), arrays.colind.data(),
                                    arrays.values.data());
  ASSERT_NE(m, nullptr);
  opts.method = static_cast<bkr_method>(99);
  EXPECT_EQ(bkr_session_create(m, &opts, nullptr), nullptr);
  bkr_matrix_destroy(m);
}

TEST(CApi, SessionWarmStartsThroughCache) {
  // The session service loop over the C boundary: a cold session
  // populates the shared cache, a fresh session over the same matrix
  // warm-starts from it and converges in fewer first-solve iterations.
  const auto a = poisson2d(16, 16);
  const auto arrays = to_c(a);
  bkr_matrix* m = bkr_matrix_create(a.rows(), arrays.rowptr.data(), arrays.colind.data(),
                                    arrays.values.data());
  ASSERT_NE(m, nullptr);
  bkr_options opts;
  bkr_options_default(&opts);
  opts.method = BKR_METHOD_GCRODR;
  opts.restart = 25;
  opts.recycle = 8;
  bkr_cache* cache = bkr_cache_create(0);
  ASSERT_NE(cache, nullptr);

  auto run_sequence = [&](int64_t* first_iters, int* warm) {
    bkr_session* session = bkr_session_create(m, &opts, cache);
    ASSERT_NE(session, nullptr);
    *warm = bkr_session_warm_started(session);
    for (size_t s = 0; s < 4; ++s) {
      const auto b = poisson2d_rhs(16, 16, kPoissonNus[s]);
      std::vector<double> x(b.size(), 0.0);
      bkr_result result{};
      ASSERT_EQ(bkr_session_solve(session, b.data(), x.data(), 1, &result), 0);
      EXPECT_EQ(result.converged, 1);
      EXPECT_EQ(result.warm_start, *warm);
      EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
      if (s == 0) *first_iters = result.iterations;
    }
    EXPECT_EQ(bkr_session_solves(session), 4);
    bkr_session_destroy(session);  // deposits the final space
  };

  int64_t cold_first = 0, warm_first = 0;
  int warm = 1;
  run_sequence(&cold_first, &warm);
  EXPECT_EQ(warm, 0);
  EXPECT_EQ(bkr_cache_entries(cache), 1);
  EXPECT_GT(bkr_cache_bytes(cache), 0);
  run_sequence(&warm_first, &warm);
  EXPECT_EQ(warm, 1);
  EXPECT_LT(warm_first, cold_first);
  EXPECT_GE(bkr_cache_hits(cache), 1);
  EXPECT_GE(bkr_cache_misses(cache), 1);

  // The result struct mirrors the cache counters after a solve.
  bkr_session* session = bkr_session_create(m, &opts, cache);
  const auto b = poisson2d_rhs(16, 16, 0.1);
  std::vector<double> x(b.size(), 0.0);
  bkr_result result{};
  ASSERT_EQ(bkr_session_solve(session, b.data(), x.data(), 1, &result), 0);
  EXPECT_EQ(result.cache_hits, bkr_cache_hits(cache));
  EXPECT_EQ(result.cache_misses, bkr_cache_misses(cache));
  EXPECT_EQ(result.cache_bytes, bkr_cache_bytes(cache));
  bkr_session_destroy(session);
  bkr_cache_destroy(cache);
  bkr_matrix_destroy(m);
}

TEST(CApi, SessionMultiRhsAndNonRecyclingMethods) {
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  const auto arrays = to_c(a);
  bkr_matrix* m = bkr_matrix_create(n, arrays.rowptr.data(), arrays.colind.data(),
                                    arrays.values.data());
  ASSERT_NE(m, nullptr);
  for (const bkr_method method : {BKR_METHOD_CG, BKR_METHOD_BLOCK_CG, BKR_METHOD_GMRES,
                                  BKR_METHOD_PSEUDO_GMRES, BKR_METHOD_LGMRES}) {
    bkr_options opts;
    bkr_options_default(&opts);
    opts.method = method;
    opts.restart = 40;
    bkr_session* session = bkr_session_create(m, &opts, nullptr);
    ASSERT_NE(session, nullptr) << "method " << method;
    const int64_t nrhs = (method == BKR_METHOD_CG || method == BKR_METHOD_LGMRES) ? 1 : 3;
    std::vector<double> b(size_t(n * nrhs)), x(size_t(n * nrhs), 0.0);
    const auto col = poisson2d_rhs(10, 10, 0.1);
    for (int64_t c = 0; c < nrhs; ++c)
      for (index_t i = 0; i < n; ++i)
        b[size_t(c * n + i)] =
            col[size_t(i)] + 0.05 * double(c) * std::sin(double(i + 1) * double(c + 1));
    bkr_result result{};
    ASSERT_EQ(bkr_session_solve(session, b.data(), x.data(), nrhs, &result), 0)
        << "method " << method;
    EXPECT_EQ(result.converged, 1) << "method " << method;
    EXPECT_EQ(result.warm_start, 0);
    EXPECT_EQ(bkr_session_flush(session), 0);  // nothing to deposit
    bkr_session_destroy(session);
  }
  bkr_matrix_destroy(m);
}

TEST(CApi, ZSessionSolvesComplexSequence) {
  MaxwellConfig cfg;
  cfg.n = 5;
  cfg.wavelengths = 0.8;
  cfg.loss = 0.5;
  const auto prob = maxwell3d(cfg);
  const auto& a = prob.matrix;
  std::vector<int64_t> rowptr(a.rowptr().begin(), a.rowptr().end());
  std::vector<int64_t> colind(a.colind().begin(), a.colind().end());
  bkr_zmatrix* m = bkr_zmatrix_create(a.rows(), rowptr.data(), colind.data(),
                                      reinterpret_cast<const double*>(a.values().data()));
  ASSERT_NE(m, nullptr);
  bkr_options opts;
  bkr_options_default(&opts);
  opts.method = BKR_METHOD_GCRODR;
  opts.restart = 60;
  opts.recycle = 10;
  opts.max_iterations = 5000;
  opts.tol = 1e-7;
  bkr_cache* cache = bkr_cache_create(0);
  bkr_zsession* session = bkr_zsession_create(m, &opts, cache);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(bkr_zsession_warm_started(session), 0);
  for (index_t s = 0; s < 2; ++s) {
    const auto b = antenna_rhs(prob, s, 4);
    std::vector<std::complex<double>> x(b.size(), std::complex<double>(0));
    bkr_result result{};
    ASSERT_EQ(bkr_zsession_solve(session, reinterpret_cast<const double*>(b.data()),
                                 reinterpret_cast<double*>(x.data()), 1, &result),
              0);
    EXPECT_EQ(result.converged, 1);
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-6);
  }
  EXPECT_EQ(bkr_zsession_solves(session), 2);
  EXPECT_EQ(bkr_zsession_flush(session), 1);
  bkr_zsession_destroy(session);
  // The complex space landed under the complex scalar key.
  EXPECT_EQ(bkr_cache_entries(cache), 1);
  bkr_zsession* warm = bkr_zsession_create(m, &opts, cache);
  EXPECT_EQ(bkr_zsession_warm_started(warm), 1);
  bkr_zsession_destroy(warm);
  bkr_cache_destroy(cache);
  bkr_zmatrix_destroy(m);
}

}  // namespace
}  // namespace bkr
