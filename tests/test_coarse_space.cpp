// Subdomain-deflation coarse space conformance (precond/coarse_space.hpp).
//
// Three contract families:
//   * the acceptance gate of the two-level method: deflated Schwarz
//     converges in strictly fewer iterations than one-level Schwarz on the
//     Poisson and elasticity fixtures (the regime where low-frequency
//     error crosses many subdomains);
//   * the Galerkin coarse matrix E = Z^T A Z inherits symmetry and
//     positive-definiteness from A on range(Z) — the P^T A P contract
//     surface consumed by the sparse direct factorization;
//   * resilience: a singular coarse matrix (pure-Neumann operator whose
//     null space the subdomain constants span) must degrade the correction
//     to the identity — never kill the enclosing solve — and leave an
//     obs::RecoveryEvent trail; a degraded two-level preconditioner is
//     bitwise its inner one-level method.
#include <gtest/gtest.h>

#include <vector>

#include "core/gmres.hpp"
#include "fem/elasticity3d.hpp"
#include "fem/poisson2d.hpp"
#include "precond/coarse_space.hpp"
#include "precond/schwarz.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

// 1-D pure-Neumann Laplacian: row sums are zero, the constant vector is a
// null vector, and the subdomain-constant basis restricts it exactly —
// E = Z^T A Z is the (singular) coarse graph Laplacian.
CsrMatrix<double> neumann_laplacian(index_t n) {
  CooBuilder<double> coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    double diag = 0;
    if (i > 0) {
      coo.add(i, i - 1, -1.0);
      diag += 1.0;
    }
    if (i + 1 < n) {
      coo.add(i, i + 1, -1.0);
      diag += 1.0;
    }
    coo.add(i, i, diag);
  }
  return coo.build();
}

index_t schwarz_iterations(const CsrMatrix<double>& a, const std::vector<double>& b,
                           index_t nsub, bool deflated, bool* converged,
                           CoarseCorrection mode = CoarseCorrection::Multiplicative,
                           CoarseBasis basis = CoarseBasis::SubdomainConstant) {
  SchwarzOptions so;
  so.subdomains = nsub;
  so.overlap = 1;
  so.kind = SchwarzKind::Ras;
  SchwarzPreconditioner<double> inner(a, so);
  std::unique_ptr<TwoLevelPreconditioner<double>> two;
  Preconditioner<double>* m = &inner;
  if (deflated) {
    CoarseSpaceOptions copts;
    copts.subdomains = nsub;
    copts.basis = basis;
    two = std::make_unique<TwoLevelPreconditioner<double>>(a, &inner, copts, mode);
    EXPECT_FALSE(two->coarse().degraded());
    m = two.get();
  }
  SolverOptions opts;
  opts.restart = 200;
  opts.tol = 1e-8;
  opts.max_iterations = 400;
  opts.side = PrecondSide::Right;
  CsrOperator<double> op(a);
  std::vector<double> x(b.size(), 0.0);
  const auto st = gmres<double>(op, m, b, x, opts);
  *converged = st.converged;
  return st.iterations;
}

// The acceptance gate: with enough subdomains that the one-level method
// degrades, the coarse space must strictly reduce the iteration count.
TEST(CoarseSpace, DeflatedBeatsPlainSchwarzPoisson) {
  const auto a = poisson2d(48, 48);
  const auto b = poisson2d_rhs(48, 48, 0.1);
  const index_t nsub = 16;
  bool conv_plain = false, conv_defl = false;
  const index_t it_plain = schwarz_iterations(a, b, nsub, false, &conv_plain);
  const index_t it_defl = schwarz_iterations(a, b, nsub, true, &conv_defl);
  EXPECT_TRUE(conv_plain);
  EXPECT_TRUE(conv_defl);
  EXPECT_LT(it_defl, it_plain) << "deflation must pay on Poisson: " << it_defl << " vs "
                               << it_plain;
}

TEST(CoarseSpace, DeflatedBeatsPlainSchwarzElasticity) {
  ElasticityConfig cfg;
  cfg.ne = 5;
  cfg.inclusion = kElasticitySequence[0];
  const auto prob = elasticity3d(cfg);
  const index_t nsub = 12;
  bool conv_plain = false, conv_defl = false;
  const index_t it_plain = schwarz_iterations(prob.matrix, prob.rhs, nsub, false, &conv_plain);
  const index_t it_defl = schwarz_iterations(prob.matrix, prob.rhs, nsub, true, &conv_defl);
  EXPECT_TRUE(conv_plain);
  EXPECT_TRUE(conv_defl);
  EXPECT_LT(it_defl, it_plain) << "deflation must pay on elasticity: " << it_defl << " vs "
                               << it_plain;
}

TEST(CoarseSpace, PartitionOfUnityBasisAlsoDeflates) {
  const auto a = poisson2d(48, 48);
  const auto b = poisson2d_rhs(48, 48, 0.1);
  bool conv_plain = false, conv_defl = false;
  const index_t it_plain = schwarz_iterations(a, b, 16, false, &conv_plain);
  const index_t it_defl = schwarz_iterations(a, b, 16, true, &conv_defl,
                                             CoarseCorrection::Multiplicative,
                                             CoarseBasis::PartitionOfUnity);
  EXPECT_TRUE(conv_plain);
  EXPECT_TRUE(conv_defl);
  EXPECT_LT(it_defl, it_plain);
}

// Both composition orders must at minimum converge; multiplicative is the
// gated one (coarse-first sees the full residual).
TEST(CoarseSpace, AdditiveCompositionConverges) {
  const auto a = poisson2d(32, 32);
  const auto b = poisson2d_rhs(32, 32, 0.1);
  bool conv = false;
  schwarz_iterations(a, b, 8, true, &conv, CoarseCorrection::Additive);
  EXPECT_TRUE(conv);
}

// E = Z^T A Z contracts: symmetric whenever A is, SPD on range(Z) for SPD
// A — i.e. the factorization holds and quadratic forms are positive.
TEST(CoarseSpace, GalerkinCoarseMatrixSymmetric) {
  const auto a = poisson2d(20, 20);
  CoarseSpaceOptions copts;
  copts.subdomains = 6;
  CoarseSpaceCorrection<double> c(a, copts);
  ASSERT_FALSE(c.degraded());
  const CsrMatrix<double>& e = c.coarse_matrix();
  ASSERT_EQ(e.rows(), 6);
  ASSERT_EQ(e.cols(), 6);
  DenseMatrix<double> ed(6, 6);
  for (index_t i = 0; i < 6; ++i)
    for (index_t l = e.rowptr()[size_t(i)]; l < e.rowptr()[size_t(i) + 1]; ++l)
      ed(i, e.colind()[size_t(l)]) = e.values()[size_t(l)];
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 6; ++j)
      EXPECT_NEAR(ed(i, j), ed(j, i), 1e-12 * (1.0 + std::abs(ed(i, j))))
          << "E asymmetric at (" << i << "," << j << ")";
}

TEST(CoarseSpace, GalerkinCoarseMatrixDefinite) {
  const auto a = poisson2d(20, 20);
  CoarseSpaceOptions copts;
  copts.subdomains = 8;
  CoarseSpaceCorrection<double> c(a, copts);
  ASSERT_FALSE(c.degraded());
  const CsrMatrix<double>& e = c.coarse_matrix();
  const auto xs = testing::random_matrix<double>(8, 5, 3);
  for (index_t j = 0; j < 5; ++j) {
    std::vector<double> x(8), ex(8);
    for (index_t i = 0; i < 8; ++i) x[size_t(i)] = xs(i, j);
    e.spmv(x.data(), ex.data());
    double q = 0;
    for (index_t i = 0; i < 8; ++i) q += x[size_t(i)] * ex[size_t(i)];
    EXPECT_GT(q, 0.0) << "x^T E x must be positive for SPD A (probe " << j << ")";
  }
}

// The coarse solve is exact on range(Z): deflating a vector already in the
// coarse space reproduces it (up to factorization roundoff).
TEST(CoarseSpace, ExactOnCoarseRange) {
  const auto a = poisson2d(16, 16);
  CoarseSpaceOptions copts;
  copts.subdomains = 4;
  CoarseSpaceCorrection<double> c(a, copts);
  ASSERT_FALSE(c.degraded());
  const index_t n = a.rows();
  // r = A Z y for a fixed coarse vector y; then Z E^{-1} Z^T r = Z y.
  std::vector<double> y{1.0, -2.0, 0.5, 3.0};
  std::vector<double> zy(size_t(n), 0.0), r(static_cast<size_t>(n)), z(static_cast<size_t>(n));
  const CsrMatrix<double>& zb = c.basis();
  zb.spmv(y.data(), zy.data());
  a.spmv(zy.data(), r.data());
  c.apply(MatrixView<const double>(r.data(), n, 1, n), MatrixView<double>(z.data(), n, 1, n));
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(z[size_t(i)], zy[size_t(i)], 1e-9) << "row " << i;
}

// --- resilience: singular coarse grid --------------------------------------

TEST(CoarseSpace, SingularCoarseGridDegradesToIdentity) {
  const auto a = neumann_laplacian(32);
  obs::SolverTrace trace;
  CoarseSpaceOptions copts;
  copts.subdomains = 4;
  copts.trace = &trace;
  CoarseSpaceCorrection<double> c(a, copts);
  EXPECT_TRUE(c.degraded());
  // Identity apply: z == r bitwise.
  const index_t n = a.rows();
  std::vector<double> r(static_cast<size_t>(n)), z(size_t(n), -7.0);
  for (index_t i = 0; i < n; ++i) r[size_t(i)] = std::sin(double(i) + 0.1);
  c.apply(MatrixView<const double>(r.data(), n, 1, n), MatrixView<double>(z.data(), n, 1, n));
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(z[size_t(i)], r[size_t(i)]);
  // Auditable trail: one RecoveryEvent at the coarse-space site.
  const auto& recs = trace.solves();
  ASSERT_EQ(recs.size(), 1u);
  ASSERT_EQ(recs[0].recoveries.size(), 1u);
  EXPECT_EQ(recs[0].recoveries[0].site, "coarse-space");
  EXPECT_EQ(recs[0].recoveries[0].action, "identity-fallback");
  EXPECT_EQ(recs[0].recoveries[0].columns, 4);
}

// A degraded two-level preconditioner must reduce exactly to its inner
// one-level method — same apply output, same solver history.
TEST(CoarseSpace, DegradedTwoLevelEqualsInner) {
  const auto a = neumann_laplacian(40);
  SchwarzOptions so;
  so.subdomains = 4;
  SchwarzPreconditioner<double> inner_alone(a, so);
  SchwarzPreconditioner<double> inner_wrapped(a, so);
  CoarseSpaceOptions copts;
  copts.subdomains = 4;
  TwoLevelPreconditioner<double> two(a, &inner_wrapped, copts);
  EXPECT_TRUE(two.coarse().degraded());
  const index_t n = a.rows();
  std::vector<double> r(static_cast<size_t>(n)), z1(static_cast<size_t>(n)), z2(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) r[size_t(i)] = std::cos(double(i) * 0.9);
  inner_alone.apply(MatrixView<const double>(r.data(), n, 1, n),
                    MatrixView<double>(z1.data(), n, 1, n));
  two.apply(MatrixView<const double>(r.data(), n, 1, n), MatrixView<double>(z2.data(), n, 1, n));
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(z2[size_t(i)], z1[size_t(i)]);
}

// The solve enclosing a degraded coarse space still completes: the gate is
// "never kill the solve", not "always accelerate it". Regularized Neumann
// operator (one Dirichlet pin) keeps the fine problem solvable while the
// coarse build uses the singular pure-Neumann matrix path.
TEST(CoarseSpace, SolveSurvivesDegradedCoarseSpace) {
  // Singular fine operator would not converge; pin one dof instead.
  CooBuilder<double> coo(24, 24);
  const auto base = neumann_laplacian(24);
  for (index_t i = 0; i < 24; ++i)
    for (index_t l = base.rowptr()[size_t(i)]; l < base.rowptr()[size_t(i) + 1]; ++l)
      coo.add(i, base.colind()[size_t(l)],
              base.values()[size_t(l)] + ((i == 0 && base.colind()[size_t(l)] == 0) ? 1.0 : 0.0));
  const auto a = coo.build();
  // Subdomain constants still nearly span a null vector of the interior;
  // force degradation deterministically by building from the singular
  // pure-Neumann matrix, then solving the pinned system.
  CoarseSpaceOptions copts;
  copts.subdomains = 3;
  CoarseSpaceCorrection<double> coarse(base, copts);
  ASSERT_TRUE(coarse.degraded());
  SchwarzOptions so;
  so.subdomains = 3;
  SchwarzPreconditioner<double> inner(a, so);
  TwoLevelPreconditioner<double> two(base, &inner, copts);
  SolverOptions opts;
  opts.tol = 1e-9;
  opts.restart = 60;
  opts.side = PrecondSide::Right;
  CsrOperator<double> op(a);
  std::vector<double> b(24, 1.0), x(24, 0.0);
  const auto st = gmres<double>(op, &two, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-8);
}

}  // namespace
}  // namespace bkr
