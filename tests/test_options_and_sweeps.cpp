// Option parser tests and the solver x preconditioning-side correctness
// sweep (parameterized property tests).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/options.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/poisson2d.hpp"
#include "precond/jacobi.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(Options, ParsesFlagsAndValues) {
  // NOTE: a bare value following a flag is consumed as that flag's value,
  // so positional arguments go before boolean flags.
  std::vector<std::string> args = {"prog",   "file.mtx", "-krylov_method",
                                   "gcrodr", "-recycle", "10",
                                   "-tol",   "1e-6",     "-recycle_same_system"};
  auto argv = argv_of(args);
  Options opts(int(argv.size()), argv.data());
  EXPECT_EQ(opts.get("krylov_method", std::string("")), "gcrodr");
  EXPECT_EQ(opts.get("recycle", index_t(0)), 10);
  EXPECT_DOUBLE_EQ(opts.get("tol", 0.0), 1e-6);
  EXPECT_TRUE(opts.has("recycle_same_system"));
  EXPECT_FALSE(opts.has("missing"));
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "file.mtx");
}

TEST(Options, FallbacksApply) {
  std::vector<std::string> args = {"prog"};
  auto argv = argv_of(args);
  Options opts(int(argv.size()), argv.data());
  EXPECT_EQ(opts.get("restart", index_t(30)), 30);
  EXPECT_DOUBLE_EQ(opts.get("tol", 1e-8), 1e-8);
  EXPECT_EQ(opts.get("name", std::string("x")), "x");
}

// --- correctness sweep: {method} x {preconditioning side} --------------

enum class Method { Gmres, PseudoGmres, GcroDr, PseudoGcroDr };

using SweepParam = std::tuple<Method, PrecondSide>;

class SolverSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SolverSweep, SolvesJacobiPreconditionedPoisson) {
  const auto [method, side] = GetParam();
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  SolverOptions opts;
  opts.restart = 20;
  opts.recycle = 6;
  opts.tol = 1e-9;
  opts.side = side;
  opts.max_iterations = 4000;
  const auto b = poisson2d_rhs(12, 12, 0.1);
  DenseMatrix<double> bm(n, 2), x(n, 2);
  std::copy(b.begin(), b.end(), bm.col(0));
  const auto b2 = poisson2d_rhs(12, 12, 100.0);
  std::copy(b2.begin(), b2.end(), bm.col(1));
  SolveStats st;
  switch (method) {
    case Method::Gmres:
      st = block_gmres<double>(op, &m, bm.view(), x.view(), opts);
      break;
    case Method::PseudoGmres:
      st = pseudo_block_gmres<double>(op, &m, bm.view(), x.view(), opts);
      break;
    case Method::GcroDr: {
      GcroDr<double> s(opts);
      st = s.solve(op, &m, bm.view(), x.view());
      break;
    }
    case Method::PseudoGcroDr: {
      PseudoGcroDr<double> s(opts);
      st = s.solve(op, &m, bm.view(), x.view());
      break;
    }
  }
  EXPECT_TRUE(st.converged);
  for (index_t c = 0; c < 2; ++c) {
    std::vector<double> xc(x.col(c), x.col(c) + n);
    std::vector<double> bc(bm.col(c), bm.col(c) + n);
    // Left preconditioning stops on the preconditioned residual; Jacobi is
    // bounded, so the true residual is still small.
    EXPECT_LT(testing::relative_residual(a, xc, bc), 1e-6)
        << "method " << int(method) << " side " << int(side) << " col " << c;
  }
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  static const char* methods[] = {"Gmres", "PseudoGmres", "GcroDr", "PseudoGcroDr"};
  static const char* sides[] = {"None", "Left", "Right", "Flexible"};
  return std::string(methods[int(std::get<0>(info.param))]) +
         sides[int(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndSides, SolverSweep,
    ::testing::Combine(::testing::Values(Method::Gmres, Method::PseudoGmres, Method::GcroDr,
                                         Method::PseudoGcroDr),
                       ::testing::Values(PrecondSide::Right, PrecondSide::Left,
                                         PrecondSide::Flexible)),
    sweep_name);

// --- restart sweep: GCRO-DR converges for every (m, k) on both scalars --

class RestartSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(RestartSweep, GcroDrComplexShiftedLaplacian) {
  const index_t m = GetParam();
  const auto ar = poisson2d(10, 10);
  const index_t n = ar.rows();
  CooBuilder<std::complex<double>> builder(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t l = ar.rowptr()[size_t(i)]; l < ar.rowptr()[size_t(i) + 1]; ++l)
      builder.add(i, ar.colind()[size_t(l)],
                  std::complex<double>(ar.values()[size_t(l)], 0) -
                      (ar.colind()[size_t(l)] == i ? std::complex<double>(0.08, -0.08)
                                                   : std::complex<double>(0)));
  const auto a = builder.build();
  CsrOperator<std::complex<double>> op(a);
  Rng rng(unsigned(17 + m));
  std::vector<std::complex<double>> b(static_cast<size_t>(n));
  for (auto& v : b) v = rng.scalar<std::complex<double>>();
  SolverOptions opts;
  opts.restart = m;
  opts.recycle = std::max<index_t>(1, m / 3);
  opts.tol = 1e-8;
  opts.max_iterations = 5000;
  GcroDr<std::complex<double>> solver(opts);
  std::vector<std::complex<double>> x(b.size(), std::complex<double>(0));
  const auto st =
      solver.solve(op, nullptr, MatrixView<const std::complex<double>>(b.data(), n, 1, n),
                   MatrixView<std::complex<double>>(x.data(), n, 1, n));
  EXPECT_TRUE(st.converged) << "m=" << m;
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Restarts, RestartSweep, ::testing::Values(5, 10, 20, 40, 80));

}  // namespace
}  // namespace bkr
