// Unit tests: dense matrices, BLAS-like kernels and factorizations.
#include <gtest/gtest.h>

#include <complex>

#include "la/blas.hpp"
#include "la/factor.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::diff_fro;
using testing::random_matrix;
using cplx = std::complex<double>;

template <class T>
class DenseKernels : public ::testing::Test {};
using Scalars = ::testing::Types<double, cplx>;
TYPED_TEST_SUITE(DenseKernels, Scalars);

TYPED_TEST(DenseKernels, GemmMatchesNaive) {
  using T = TypeParam;
  const auto a = random_matrix<T>(7, 5, 1);
  const auto b = random_matrix<T>(5, 4, 2);
  DenseMatrix<T> c(7, 4);
  gemm<T>(Trans::N, Trans::N, T(2), a.view(), b.view(), T(0), c.view());
  for (index_t i = 0; i < 7; ++i)
    for (index_t j = 0; j < 4; ++j) {
      T s(0);
      for (index_t l = 0; l < 5; ++l) s += a(i, l) * b(l, j);
      EXPECT_NEAR(abs_val(c(i, j) - T(2) * s), 0.0, 1e-13);
    }
}

TYPED_TEST(DenseKernels, GemmConjTranspose) {
  using T = TypeParam;
  const auto a = random_matrix<T>(6, 3, 3);
  const auto b = random_matrix<T>(6, 4, 4);
  DenseMatrix<T> c(3, 4);
  gemm<T>(Trans::C, Trans::N, T(1), a.view(), b.view(), T(0), c.view());
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 4; ++j) {
      T s(0);
      for (index_t l = 0; l < 6; ++l) s += conj(a(l, i)) * b(l, j);
      EXPECT_NEAR(abs_val(c(i, j) - s), 0.0, 1e-13);
    }
}

TYPED_TEST(DenseKernels, GemmAccumulatesWithBeta) {
  using T = TypeParam;
  const auto a = random_matrix<T>(4, 4, 5);
  const auto b = random_matrix<T>(4, 2, 6);
  DenseMatrix<T> c = random_matrix<T>(4, 2, 7);
  DenseMatrix<T> expected = copy_of(c);
  gemm<T>(Trans::N, Trans::N, T(1), a.view(), b.view(), T(3), c.view());
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 2; ++j) {
      T s = T(3) * expected(i, j);
      for (index_t l = 0; l < 4; ++l) s += a(i, l) * b(l, j);
      EXPECT_NEAR(abs_val(c(i, j) - s), 0.0, 1e-13);
    }
}

TYPED_TEST(DenseKernels, TrsmLeftUpperInvertsTriangle) {
  using T = TypeParam;
  DenseMatrix<T> r = random_matrix<T>(5, 5, 8);
  for (index_t j = 0; j < 5; ++j) {
    for (index_t i = j + 1; i < 5; ++i) r(i, j) = T(0);
    r(j, j) += T(4);  // well conditioned
  }
  const auto b = random_matrix<T>(5, 3, 9);
  DenseMatrix<T> x = copy_of(b);
  trsm_left_upper<T>(r.view(), x.view());
  DenseMatrix<T> check(5, 3);
  gemm<T>(Trans::N, Trans::N, T(1), r.view(), x.view(), T(0), check.view());
  EXPECT_LT(diff_fro<T>(check.view(), b.view()), 1e-12);
}

TYPED_TEST(DenseKernels, TrsmRightUpperSolvesXR) {
  using T = TypeParam;
  DenseMatrix<T> r = random_matrix<T>(4, 4, 10);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = j + 1; i < 4; ++i) r(i, j) = T(0);
    r(j, j) += T(4);
  }
  const auto b = random_matrix<T>(6, 4, 11);
  DenseMatrix<T> x = copy_of(b);
  trsm_right_upper<T>(r.view(), x.view());
  DenseMatrix<T> check(6, 4);
  gemm<T>(Trans::N, Trans::N, T(1), x.view(), r.view(), T(0), check.view());
  EXPECT_LT(diff_fro<T>(check.view(), b.view()), 1e-12);
}

TYPED_TEST(DenseKernels, TrsmLeftUpperConjSolvesRH) {
  using T = TypeParam;
  DenseMatrix<T> r = random_matrix<T>(5, 5, 12);
  for (index_t j = 0; j < 5; ++j) {
    for (index_t i = j + 1; i < 5; ++i) r(i, j) = T(0);
    r(j, j) += T(4);
  }
  const auto b = random_matrix<T>(5, 2, 13);
  DenseMatrix<T> x = copy_of(b);
  trsm_left_upper_conj<T>(r.view(), x.view());
  // Check R^H x = b.
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < 5; ++i) {
      T s(0);
      for (index_t l = 0; l <= i; ++l) s += conj(r(l, i)) * x(l, j);
      EXPECT_NEAR(abs_val(s - b(i, j)), 0.0, 1e-12);
    }
}

TYPED_TEST(DenseKernels, CholeskyReconstructs) {
  using T = TypeParam;
  const auto m = random_matrix<T>(8, 5, 14);
  DenseMatrix<T> g(5, 5);
  gram<T>(m.view(), g.view());
  for (index_t i = 0; i < 5; ++i) g(i, i) += T(1);  // ensure PD
  DenseMatrix<T> r = copy_of(g);
  ASSERT_TRUE(cholesky_upper<T>(r.view()));
  DenseMatrix<T> back(5, 5);
  gemm<T>(Trans::C, Trans::N, T(1), r.view(), r.view(), T(0), back.view());
  EXPECT_LT(diff_fro<T>(back.view(), g.view()), 1e-12);
}

TYPED_TEST(DenseKernels, CholeskyRejectsIndefinite) {
  using T = TypeParam;
  DenseMatrix<T> a = DenseMatrix<T>::identity(3);
  a(1, 1) = T(-1);
  EXPECT_FALSE(cholesky_upper<T>(a.view()));
}

TYPED_TEST(DenseKernels, PivotedCholeskyDetectsRank) {
  using T = TypeParam;
  // Gram matrix of 3 columns where the third is a combination of the
  // first two -> rank 2.
  auto v = random_matrix<T>(10, 3, 15);
  for (index_t i = 0; i < 10; ++i) v(i, 2) = v(i, 0) + v(i, 1);
  DenseMatrix<T> g(3, 3);
  gram<T>(v.view(), g.view());
  std::vector<index_t> perm;
  EXPECT_EQ(pivoted_cholesky<T>(g.view(), perm, 1e-10), 2);
}

TYPED_TEST(DenseKernels, DenseLuSolves) {
  using T = TypeParam;
  auto a = random_matrix<T>(9, 9, 16);
  for (index_t i = 0; i < 9; ++i) a(i, i) += T(5);
  const auto b = random_matrix<T>(9, 3, 17);
  DenseMatrix<T> x = copy_of(b);
  DenseLU<T> lu(copy_of(a));
  ASSERT_FALSE(lu.singular());
  lu.solve(x.view());
  DenseMatrix<T> check(9, 3);
  gemm<T>(Trans::N, Trans::N, T(1), a.view(), x.view(), T(0), check.view());
  EXPECT_LT(diff_fro<T>(check.view(), b.view()), 1e-11);
}

TYPED_TEST(DenseKernels, DenseLuFlagsSingular) {
  using T = TypeParam;
  DenseMatrix<T> a(3, 3);  // all zero
  DenseLU<T> lu(std::move(a));
  EXPECT_TRUE(lu.singular());
}

TEST(DenseMatrix, BlockViewsShareStorage) {
  DenseMatrix<double> a(4, 4);
  auto b = a.block(1, 1, 2, 2);
  b(0, 0) = 7.0;
  EXPECT_EQ(a(1, 1), 7.0);
  EXPECT_EQ(b.ld(), 4);
}

TEST(DenseMatrix, NormsAndDots) {
  std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2<double>(2, x.data()), 5.0);
  std::vector<cplx> u = {{1, 1}, {0, 2}};
  std::vector<cplx> w = {{1, -1}, {2, 0}};
  const cplx d = dot<cplx>(2, u.data(), w.data());
  // conj(u) . w = (1-i)(1-i) + (-2i)(2) = (1 - 2i + i^2) - 4i = -2i - 4i
  EXPECT_NEAR(std::abs(d - cplx(0, -6)), 0.0, 1e-14);
}

}  // namespace
}  // namespace bkr
