// Integration tests: (Block) GCRO-DR — fig. 1 of the paper.
#include <gtest/gtest.h>

#include <complex>

#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/poisson2d.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;
using testing::random_matrix;

SolverOptions gcro_opts(index_t m, index_t k, double tol = 1e-9) {
  SolverOptions o;
  o.restart = m;
  o.recycle = k;
  o.tol = tol;
  o.max_iterations = 5000;
  return o;
}

TEST(GcroDr, SolvesSingleSystem) {
  const auto a = poisson2d(12, 12);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(12, 12, 0.1);
  std::vector<double> x(b.size(), 0.0);
  GcroDr<double> solver(gcro_opts(30, 10));
  const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), a.rows(), 1, a.rows()),
                               MatrixView<double>(x.data(), a.rows(), 1, a.rows()));
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-8);
  EXPECT_TRUE(solver.has_recycled_space());
  EXPECT_EQ(solver.recycle_dim(), 10);
}

TEST(GcroDr, RecyclingInvariantAUEqualsC) {
  // After a solve, A U = C must hold (the structural invariant of GCRO).
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 10.0);
  std::vector<double> x(b.size(), 0.0);
  GcroDr<double> solver(gcro_opts(20, 6));
  const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                               MatrixView<double>(x.data(), n, 1, n));
  ASSERT_TRUE(st.converged);
  const auto& u = solver.recycled_u();
  const auto& c = solver.recycled_c();
  ASSERT_EQ(u.cols(), c.cols());
  DenseMatrix<double> au(n, u.cols());
  a.spmm(u.view(), au.view());
  EXPECT_LT(testing::diff_fro<double>(au.view(), c.view()), 1e-8);
  // And C has orthonormal columns.
  EXPECT_LT(testing::ortho_defect<double>(c.view()), 1e-8);
}

TEST(GcroDr, SecondSolveSameSystemIsCheaper) {
  // The paper's Poisson scenario: one matrix, several RHS.
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  auto opts = gcro_opts(25, 8);
  opts.same_system = true;
  GcroDr<double> solver(opts);
  std::vector<index_t> iters;
  for (const double nu : kPoissonNus) {
    const auto b = poisson2d_rhs(16, 16, nu);
    std::vector<double> x(b.size(), 0.0);
    const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                 MatrixView<double>(x.data(), n, 1, n));
    ASSERT_TRUE(st.converged);
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-8);
    iters.push_back(st.iterations);
  }
  // Later solves must benefit from the recycled space.
  EXPECT_LT(iters[1], iters[0]);
  EXPECT_LT(iters[2], iters[0]);
  EXPECT_LT(iters[3], iters[0]);
}

TEST(GcroDr, BeatsRestartedGmresOnHardSequence) {
  const auto a = poisson2d(20, 20);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  SolverOptions gopts;
  gopts.restart = 20;
  gopts.tol = 1e-8;
  gopts.max_iterations = 20000;
  auto copts = gcro_opts(20, 8, 1e-8);
  copts.same_system = true;
  copts.max_iterations = 20000;
  GcroDr<double> recycler(copts);
  index_t gmres_total = 0, gcro_total = 0;
  for (const double nu : kPoissonNus) {
    const auto b = poisson2d_rhs(20, 20, nu);
    std::vector<double> xg(b.size(), 0.0), xc(b.size(), 0.0);
    const auto sg = gmres<double>(op, nullptr, b, xg, gopts);
    ASSERT_TRUE(sg.converged);
    gmres_total += sg.iterations;
    const auto sc = recycler.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                   MatrixView<double>(xc.data(), n, 1, n));
    ASSERT_TRUE(sc.converged);
    gcro_total += sc.iterations;
  }
  // The headline claim of section IV: recycling cuts total iterations.
  EXPECT_LT(gcro_total, gmres_total);
}

TEST(GcroDr, ChangingMatrixSequenceStillConverges) {
  // Slowly varying SPD matrices (the elasticity scenario, scaled down):
  // Poisson plus a varying diagonal shift.
  const auto base = poisson2d(12, 12);
  const index_t n = base.rows();
  GcroDr<double> solver(gcro_opts(20, 6, 1e-8));
  const auto b = poisson2d_rhs(12, 12, 1.0);
  for (const double shift : {0.0, 0.02, 0.04, 0.06}) {
    auto a = base;
    auto vals = a.values();
    // Add shift to the diagonal.
    for (index_t i = 0; i < n; ++i)
      for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l)
        if (a.colind()[size_t(l)] == i) a.values()[size_t(l)] = vals[size_t(l)] + shift;
    CsrOperator<double> op(a);
    std::vector<double> x(b.size(), 0.0);
    const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                 MatrixView<double>(x.data(), n, 1, n), nullptr,
                                 /*new_matrix=*/true);
    EXPECT_TRUE(st.converged);
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
  }
}

TEST(GcroDr, StrategyAAndBBothConverge) {
  const auto a = poisson2d(14, 14);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(14, 14, 0.001);
  for (const auto strat : {RecycleStrategy::A, RecycleStrategy::B}) {
    auto opts = gcro_opts(15, 5, 1e-8);
    opts.strategy = strat;
    GcroDr<double> solver(opts);
    std::vector<double> x(b.size(), 0.0);
    const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                 MatrixView<double>(x.data(), n, 1, n));
    EXPECT_TRUE(st.converged) << "strategy " << (strat == RecycleStrategy::A ? "A" : "B");
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
  }
}

TEST(GcroDr, StrategyANeedsOneMoreReductionPerRestart) {
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(16, 16, 100.0);
  std::int64_t reductions[2];
  index_t cycles[2];
  int idx = 0;
  for (const auto strat : {RecycleStrategy::B, RecycleStrategy::A}) {
    auto opts = gcro_opts(10, 4, 1e-9);
    opts.strategy = strat;
    GcroDr<double> solver(opts);
    std::vector<double> x(b.size(), 0.0);
    const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                 MatrixView<double>(x.data(), n, 1, n));
    EXPECT_TRUE(st.converged);
    reductions[idx] = st.reductions;
    cycles[idx] = st.cycles;
    ++idx;
  }
  // If iteration paths coincide, A costs exactly one extra reduction per
  // eigenproblem restart; allow paths to differ slightly but A must not
  // be cheaper in reductions per cycle.
  EXPECT_GE(double(reductions[1]) / double(cycles[1]), double(reductions[0]) / double(cycles[0]));
}

TEST(GcroDr, SameSystemSkipsRecycleSetupReductions) {
  const auto a = poisson2d(14, 14);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  auto run = [&](bool same) {
    auto opts = gcro_opts(15, 5, 1e-8);
    opts.same_system = same;
    GcroDr<double> solver(opts);
    std::int64_t total = 0;
    for (const double nu : kPoissonNus) {
      const auto b = poisson2d_rhs(14, 14, nu);
      std::vector<double> x(b.size(), 0.0);
      const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                   MatrixView<double>(x.data(), n, 1, n));
      EXPECT_TRUE(st.converged);
      total += st.reductions;
    }
    return total;
  };
  // The non-variable optimization (section III-B) must reduce the number
  // of global synchronizations over the sequence.
  EXPECT_LT(run(true), run(false));
}

TEST(BlockGcroDr, SolvesMultipleRhs) {
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 4, 81);
  DenseMatrix<double> x(n, 4);
  GcroDr<double> solver(gcro_opts(12, 3, 1e-8));
  const auto st = solver.solve(op, nullptr, b.view(), x.view());
  EXPECT_TRUE(st.converged);
  DenseMatrix<double> check(n, 4);
  a.spmm(x.view(), check.view());
  EXPECT_LT(testing::diff_fro<double>(check.view(), b.view()), 1e-6);
  EXPECT_EQ(solver.recycle_dim(), 3 * 4);  // k blocks of p columns
}

TEST(BlockGcroDr, RecycledBlockInvariant) {
  const auto a = poisson2d(9, 9);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 3, 82);
  DenseMatrix<double> x(n, 3);
  GcroDr<double> solver(gcro_opts(10, 3, 1e-9));
  const auto st = solver.solve(op, nullptr, b.view(), x.view());
  ASSERT_TRUE(st.converged);
  const auto& u = solver.recycled_u();
  const auto& c = solver.recycled_c();
  DenseMatrix<double> au(n, u.cols());
  a.spmm(u.view(), au.view());
  EXPECT_LT(testing::diff_fro<double>(au.view(), c.view()), 1e-7);
}

TEST(PseudoGcroDrPlaceholder, BlockAndSingleAgreeOnSolution) {
  // Block GCRO-DR with p RHS and sequential single-RHS GCRO-DR must both
  // hit the same solutions (up to tolerance).
  const auto a = poisson2d(8, 8);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 2, 83);
  DenseMatrix<double> xb(n, 2);
  GcroDr<double> block(gcro_opts(10, 2, 1e-10));
  ASSERT_TRUE(block.solve(op, nullptr, b.view(), xb.view()).converged);
  for (index_t c = 0; c < 2; ++c) {
    std::vector<double> bc(b.col(c), b.col(c) + n), xc(size_t(n), 0.0);
    GcroDr<double> single(gcro_opts(10, 2, 1e-10));
    ASSERT_TRUE(single
                    .solve(op, nullptr, MatrixView<const double>(bc.data(), n, 1, n),
                           MatrixView<double>(xc.data(), n, 1, n))
                    .converged);
    for (index_t i = 0; i < n; ++i) EXPECT_NEAR(xc[size_t(i)], xb(i, c), 1e-6);
  }
}

TEST(GcroDr, ComplexSystem) {
  // Complex shifted Poisson (a damped Helmholtz surrogate).
  const auto ar = poisson2d(12, 12);
  const index_t n = ar.rows();
  CooBuilder<cplx> builder(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t l = ar.rowptr()[size_t(i)]; l < ar.rowptr()[size_t(i) + 1]; ++l)
      builder.add(i, ar.colind()[size_t(l)],
                  cplx(ar.values()[size_t(l)], 0) -
                      (ar.colind()[size_t(l)] == i ? cplx(0.05, -0.05) : cplx(0)));
  const auto a = builder.build();
  CsrOperator<cplx> op(a);
  Rng rng(84);
  std::vector<cplx> b(static_cast<size_t>(n));
  for (auto& v : b) v = rng.scalar<cplx>();
  std::vector<cplx> x(b.size(), cplx(0));
  GcroDr<cplx> solver(gcro_opts(20, 6, 1e-9));
  const auto st = solver.solve(op, nullptr, MatrixView<const cplx>(b.data(), n, 1, n),
                               MatrixView<cplx>(x.data(), n, 1, n));
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-8);
}

TEST(GcroDr, HistoryTracksConvergence) {
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(12, 12, 10.0);
  std::vector<double> x(b.size(), 0.0);
  GcroDr<double> solver(gcro_opts(15, 5, 1e-9));
  const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                               MatrixView<double>(x.data(), n, 1, n));
  ASSERT_TRUE(st.converged);
  const auto& h = st.history[0];
  ASSERT_GE(h.size(), 2u);
  EXPECT_NEAR(h.front(), 1.0, 1e-9);  // zero initial guess
  EXPECT_LE(h.back(), 1e-8);
}

TEST(GcroDr, RejectsBadRecycleDimension) {
  const auto a = poisson2d(5, 5);
  CsrOperator<double> op(a);
  std::vector<double> b(25, 1.0), x(25, 0.0);
  SolverOptions opts;
  opts.restart = 10;
  opts.recycle = 0;
  GcroDr<double> solver(opts);
  EXPECT_THROW(solver.solve(op, nullptr, MatrixView<const double>(b.data(), 25, 1, 25),
                            MatrixView<double>(x.data(), 25, 1, 25)),
               std::invalid_argument);
}

// Property sweep: recycling never hurts correctness across (m, k) combos.
class GcroDrParams : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(GcroDrParams, ConvergesForAllRestartRecycleCombos) {
  const auto [m, k] = GetParam();
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  GcroDr<double> solver(gcro_opts(m, k, 1e-8));
  for (const double nu : {0.1, 100.0}) {
    const auto b = poisson2d_rhs(10, 10, nu);
    std::vector<double> x(b.size(), 0.0);
    const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                 MatrixView<double>(x.data(), n, 1, n), nullptr,
                                 /*new_matrix=*/false);
    EXPECT_TRUE(st.converged) << "m=" << m << " k=" << k;
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Combos, GcroDrParams,
                         ::testing::Values(std::pair<index_t, index_t>{8, 1},
                                           std::pair<index_t, index_t>{8, 4},
                                           std::pair<index_t, index_t>{8, 7},
                                           std::pair<index_t, index_t>{30, 10},
                                           std::pair<index_t, index_t>{30, 15},
                                           std::pair<index_t, index_t>{50, 10}));

}  // namespace
}  // namespace bkr
