// Complex-scalar coverage of the block/pseudo-block solver family (the
// Maxwell scalar type), including the flexible variants.
#include <gtest/gtest.h>

#include <complex>

#include "core/block_cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/maxwell3d.hpp"
#include "precond/jacobi.hpp"
#include "precond/krylov_smoother.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;

MaxwellProblem small_maxwell() {
  MaxwellConfig cfg;
  cfg.n = 6;
  cfg.wavelengths = 0.9;
  cfg.loss = 0.3;
  return maxwell3d(cfg);
}

double worst_residual(const CsrMatrix<cplx>& a, MatrixView<const cplx> x,
                      MatrixView<const cplx> b) {
  DenseMatrix<cplx> r(b.rows(), b.cols());
  a.spmm(x, r.view());
  double worst = 0;
  for (index_t c = 0; c < b.cols(); ++c) {
    double num = 0, den = 0;
    for (index_t i = 0; i < b.rows(); ++i) {
      num += std::norm(b(i, c) - r(i, c));
      den += std::norm(b(i, c));
    }
    worst = std::max(worst, std::sqrt(num / den));
  }
  return worst;
}

DenseMatrix<cplx> antenna_block(const MaxwellProblem& prob, index_t p) {
  DenseMatrix<cplx> b(prob.nfree, p);
  for (index_t a = 0; a < p; ++a) {
    const auto col = antenna_rhs(prob, a, std::max<index_t>(p, 4));
    std::copy(col.begin(), col.end(), b.col(a));
  }
  return b;
}

TEST(ComplexSolvers, BlockGmres) {
  const auto prob = small_maxwell();
  CsrOperator<cplx> op(prob.matrix);
  const auto b = antenna_block(prob, 3);
  DenseMatrix<cplx> x(prob.nfree, 3);
  SolverOptions opts;
  opts.restart = 120;
  opts.tol = 1e-8;
  opts.max_iterations = 1500;
  const auto st = block_gmres<cplx>(op, nullptr, b.view(), x.view(), opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(worst_residual(prob.matrix, x.view(), b.view()), 1e-7);
}

TEST(ComplexSolvers, PseudoBlockGmresMatchesSequential) {
  const auto prob = small_maxwell();
  const index_t n = prob.nfree;
  CsrOperator<cplx> op(prob.matrix);
  JacobiPreconditioner<cplx> m(prob.matrix);
  const auto b = antenna_block(prob, 2);
  SolverOptions opts;
  opts.restart = 150;
  opts.tol = 1e-9;
  opts.max_iterations = 2000;
  DenseMatrix<cplx> x(n, 2);
  const auto st = pseudo_block_gmres<cplx>(op, &m, b.view(), x.view(), opts);
  ASSERT_TRUE(st.converged);
  for (index_t c = 0; c < 2; ++c) {
    std::vector<cplx> bc(b.col(c), b.col(c) + n), xc(static_cast<size_t>(n), cplx(0));
    const auto ss = gmres<cplx>(op, &m, bc, xc, opts);
    ASSERT_TRUE(ss.converged);
    // Same lane-wise Krylov spaces -> same per-lane iteration counts.
    EXPECT_EQ(st.per_rhs_iterations[size_t(c)], ss.per_rhs_iterations[0]);
    double diff = 0;
    for (index_t i = 0; i < n; ++i) diff = std::max(diff, std::abs(xc[size_t(i)] - x(i, c)));
    EXPECT_LT(diff, 1e-7);
  }
}

TEST(ComplexSolvers, FlexibleBlockGcroDrWithKrylovSmoother) {
  // Variable (GMRES-smoothed) preconditioner forces FBGCRO-DR; the solver
  // must detect it via is_variable().
  const auto prob = small_maxwell();
  CsrOperator<cplx> op(prob.matrix);
  GmresSmoother<cplx> m(op, 4);
  ASSERT_TRUE(m.is_variable());
  const auto b = antenna_block(prob, 2);
  DenseMatrix<cplx> x(prob.nfree, 2);
  SolverOptions opts;
  opts.restart = 40;
  opts.recycle = 8;
  opts.tol = 1e-8;
  opts.side = PrecondSide::Right;  // auto-upgraded to Flexible
  opts.max_iterations = 2000;
  GcroDr<cplx> solver(opts);
  const auto st = solver.solve(op, &m, b.view(), x.view());
  EXPECT_TRUE(st.converged);
  EXPECT_LT(worst_residual(prob.matrix, x.view(), b.view()), 1e-7);
  // The recycled space satisfies A U = C even in the flexible variant
  // (U is stored in solution space).
  const auto& u = solver.recycled_u();
  const auto& c = solver.recycled_c();
  DenseMatrix<cplx> au(prob.nfree, u.cols());
  prob.matrix.spmm(u.view(), au.view());
  EXPECT_LT(testing::diff_fro<cplx>(au.view(), c.view()), 1e-6);
}

TEST(ComplexSolvers, PseudoGcroDrComplexSequence) {
  const auto prob = small_maxwell();
  CsrOperator<cplx> op(prob.matrix);
  SolverOptions opts;
  opts.restart = 30;
  opts.recycle = 6;
  opts.tol = 1e-8;
  opts.same_system = true;
  opts.max_iterations = 3000;
  PseudoGcroDr<cplx> solver(opts);
  index_t first = 0;
  for (int s = 0; s < 2; ++s) {
    DenseMatrix<cplx> b(prob.nfree, 2);
    for (index_t a = 0; a < 2; ++a) {
      const auto col = antenna_rhs(prob, 2 * s + a, 4);
      std::copy(col.begin(), col.end(), b.col(a));
    }
    DenseMatrix<cplx> x(prob.nfree, 2);
    const auto st = solver.solve(op, nullptr, b.view(), x.view());
    EXPECT_TRUE(st.converged);
    EXPECT_LT(worst_residual(prob.matrix, x.view(), b.view()), 1e-7);
    if (s == 0)
      first = st.iterations;
    else
      EXPECT_LT(st.iterations, first);
  }
}

TEST(ComplexSolvers, BlockCgOnHermitianPart) {
  // Block CG needs HPD: use A^H A of a small Maxwell operator (normal
  // equations), which is Hermitian positive definite.
  const auto prob = small_maxwell();
  const auto& a = prob.matrix;
  const index_t n = a.rows();
  // Operator for A^H A without forming it: wrap two SpMM with a conjugated
  // transpose pass.
  struct NormalOperator final : LinearOperator<cplx> {
    const CsrMatrix<cplx>* a;
    CsrMatrix<cplx> ah;  // conjugate transpose, materialized
    explicit NormalOperator(const CsrMatrix<cplx>& mat) : a(&mat) {
      CooBuilder<cplx> b(mat.cols(), mat.rows());
      for (index_t i = 0; i < mat.rows(); ++i)
        for (index_t l = mat.rowptr()[size_t(i)]; l < mat.rowptr()[size_t(i) + 1]; ++l)
          b.add(mat.colind()[size_t(l)], i, std::conj(mat.values()[size_t(l)]));
      ah = b.build();
    }
    [[nodiscard]] index_t n() const override { return a->rows(); }
    void apply(MatrixView<const cplx> x, MatrixView<cplx> y) const override {
      DenseMatrix<cplx> t(a->rows(), x.cols());
      a->spmm(x, t.view());
      ah.spmm(t.view(), y);
    }
  } op(a);
  const auto b = antenna_block(prob, 2);
  DenseMatrix<cplx> rhs(n, 2);
  op.apply(b.view(), rhs.view());  // consistent RHS: solution is b
  DenseMatrix<cplx> x(n, 2);
  SolverOptions opts;
  opts.tol = 1e-10;
  opts.max_iterations = 5000;
  const auto st = block_cg<cplx>(op, nullptr, rhs.view(), x.view(), opts);
  ASSERT_TRUE(st.converged);
  EXPECT_LT(testing::diff_fro<cplx>(x.view(), b.view()), 1e-4);
}

}  // namespace
}  // namespace bkr
