// Edge cases and failure-injection tests across the solver stack.
#include <gtest/gtest.h>

#include <complex>

#include "core/block_cg.hpp"
#include "core/cg.hpp"
#include "direct/factor.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "fem/poisson2d.hpp"
#include "precond/schwarz.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;
using testing::random_matrix;

TEST(EdgeCases, WarmStartConvergesFaster) {
  const auto a = poisson2d(12, 12);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(12, 12, 1.0);
  SolverOptions opts;
  opts.restart = 100;
  opts.tol = 1e-9;
  std::vector<double> cold(b.size(), 0.0);
  const auto scold = gmres<double>(op, nullptr, b, cold, opts);
  ASSERT_TRUE(scold.converged);
  // Perturb the solution slightly and restart from it.
  std::vector<double> warm = cold;
  for (auto& v : warm) v *= 1.0 + 1e-6;
  const auto swarm = gmres<double>(op, nullptr, b, warm, opts);
  EXPECT_TRUE(swarm.converged);
  EXPECT_LE(swarm.iterations, scold.iterations);
}

TEST(EdgeCases, MaxIterationsCapIsHonored) {
  const auto a = poisson2d(20, 20);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(20, 20, 0.001);
  SolverOptions opts;
  opts.restart = 10;
  opts.tol = 1e-14;  // unreachable
  opts.max_iterations = 37;
  std::vector<double> x(b.size(), 0.0);
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_FALSE(st.converged);
  EXPECT_LE(st.iterations, 37);
  EXPECT_GE(st.iterations, 30);
}

TEST(EdgeCases, HistoryCanBeDisabled) {
  const auto a = poisson2d(8, 8);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(8, 8, 10.0);
  SolverOptions opts;
  opts.record_history = false;
  std::vector<double> x(b.size(), 0.0);
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_TRUE(st.history[0].empty());
}

TEST(EdgeCases, IdentityMatrixConvergesImmediately) {
  CooBuilder<double> builder(10, 10);
  for (index_t i = 0; i < 10; ++i) builder.add(i, i, 1.0);
  const auto a = builder.build();
  CsrOperator<double> op(a);
  std::vector<double> b(10, 2.0), x(10, 0.0);
  SolverOptions opts;
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LE(st.iterations, 1);
  for (const auto v : x) EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(EdgeCases, TinySystems) {
  // n = 1 and n = 2 must work across solvers.
  for (const index_t nn : {index_t(1), index_t(2)}) {
    CooBuilder<double> builder(nn, nn);
    for (index_t i = 0; i < nn; ++i) {
      builder.add(i, i, 3.0);
      if (i + 1 < nn) {
        builder.add(i, i + 1, -1.0);
        builder.add(i + 1, i, -1.0);
      }
    }
    const auto a = builder.build();
    CsrOperator<double> op(a);
    std::vector<double> b(static_cast<size_t>(nn), 1.0), x(static_cast<size_t>(nn), 0.0);
    SolverOptions opts;
    opts.restart = 4;
    const auto st = gmres<double>(op, nullptr, b, x, opts);
    EXPECT_TRUE(st.converged);
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-9);
    std::fill(x.begin(), x.end(), 0.0);
    const auto sc = cg<double>(op, nullptr, b, x, opts);
    EXPECT_TRUE(sc.converged);
  }
}

TEST(EdgeCases, GcroDrRecycleLargerThanNeededIsClamped) {
  // recycle >= restart is clamped to restart - 1 rather than crashing.
  const auto a = poisson2d(8, 8);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(8, 8, 0.1);
  SolverOptions opts;
  opts.restart = 6;
  opts.recycle = 100;
  GcroDr<double> solver(opts);
  std::vector<double> x(b.size(), 0.0);
  const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), 64, 1, 64),
                               MatrixView<double>(x.data(), 64, 1, 64));
  EXPECT_TRUE(st.converged);
  EXPECT_LE(solver.recycle_dim(), 5);
}

TEST(EdgeCases, GcroDrResetDropsSpace) {
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 0.1);
  SolverOptions opts;
  opts.restart = 12;
  opts.recycle = 4;
  GcroDr<double> solver(opts);
  std::vector<double> x(b.size(), 0.0);
  (void)solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                     MatrixView<double>(x.data(), n, 1, n));
  ASSERT_TRUE(solver.has_recycled_space());
  solver.reset();
  EXPECT_FALSE(solver.has_recycled_space());
  // Still solves after a reset.
  std::fill(x.begin(), x.end(), 0.0);
  const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                               MatrixView<double>(x.data(), n, 1, n));
  EXPECT_TRUE(st.converged);
}

TEST(EdgeCases, BlockGmresWithDuplicateColumns) {
  // Two identical RHS columns: an immediate block rank deficiency the
  // solver must survive (rank-revealing fallback at the residual QR).
  const auto a = poisson2d(9, 9);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  DenseMatrix<double> b(n, 2);
  const auto f = poisson2d_rhs(9, 9, 1.0);
  std::copy(f.begin(), f.end(), b.col(0));
  std::copy(f.begin(), f.end(), b.col(1));
  DenseMatrix<double> x(n, 2);
  SolverOptions opts;
  opts.restart = 50;
  opts.tol = 1e-8;
  opts.max_iterations = 500;
  const auto st = block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  EXPECT_TRUE(st.converged);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x(i, 0), x(i, 1), 1e-6);
}

TEST(EdgeCases, PseudoBlockWithOneConvergedLane) {
  // Lane 1 starts with the exact solution; the other lane must still run.
  const auto a = poisson2d(8, 8);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  DenseMatrix<double> b(n, 2), x(n, 2);
  const auto f = poisson2d_rhs(8, 8, 0.1);
  std::copy(f.begin(), f.end(), b.col(0));
  std::copy(f.begin(), f.end(), b.col(1));
  // Solve lane 1 exactly first.
  SparseLDLT<double> direct(a);
  std::vector<double> exact(f);
  direct.solve(MatrixView<double>(exact.data(), n, 1, n));
  std::copy(exact.begin(), exact.end(), x.col(1));
  SolverOptions opts;
  opts.restart = 40;
  const auto st = pseudo_block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.per_rhs_iterations[1], 0);
  EXPECT_GT(st.per_rhs_iterations[0], 3);
  EXPECT_LT(testing::relative_residual(a, std::vector<double>(x.col(0), x.col(0) + n), f), 1e-7);
}

TEST(EdgeCases, LgmresZeroAugmentationIsPlainGmres) {
  const auto a = poisson2d(10, 10);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 10.0);
  SolverOptions opts;
  opts.restart = 12;
  opts.recycle = 0;  // no augmentation
  opts.max_iterations = 3000;
  std::vector<double> xl(b.size(), 0.0), xg(b.size(), 0.0);
  const auto sl = lgmres<double>(op, nullptr, b, xl, opts);
  const auto sg = gmres<double>(op, nullptr, b, xg, opts);
  ASSERT_TRUE(sl.converged);
  ASSERT_TRUE(sg.converged);
  EXPECT_EQ(sl.iterations, sg.iterations);
}

TEST(EdgeCases, SchwarzRejectsNothingAndCountsStats) {
  const auto a = poisson2d(12, 12);
  SchwarzOptions o;
  o.subdomains = 4;
  o.overlap = 1;
  SchwarzPreconditioner<double> m(a, o);
  DenseMatrix<double> r = random_matrix<double>(a.rows(), 2, 7);
  DenseMatrix<double> z(a.rows(), 2);
  m.apply(r.view(), z.view());
  m.apply(r.view(), z.view());
  EXPECT_EQ(m.stats().applications, 2);
  EXPECT_GT(m.stats().factor_nnz_total, 0);
  EXPECT_GE(m.stats().apply_seconds_sum, m.stats().apply_seconds_max);
}

TEST(EdgeCases, ComplexLgmres) {
  // LGMRES on a complex shifted Laplacian.
  const auto ar = poisson2d(10, 10);
  const index_t n = ar.rows();
  CooBuilder<cplx> builder(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t l = ar.rowptr()[size_t(i)]; l < ar.rowptr()[size_t(i) + 1]; ++l)
      builder.add(i, ar.colind()[size_t(l)],
                  cplx(ar.values()[size_t(l)], 0) -
                      (ar.colind()[size_t(l)] == i ? cplx(0.1, -0.1) : cplx(0)));
  const auto a = builder.build();
  CsrOperator<cplx> op(a);
  Rng rng(11);
  std::vector<cplx> b(static_cast<size_t>(n));
  for (auto& v : b) v = rng.scalar<cplx>();
  std::vector<cplx> x(b.size(), cplx(0));
  SolverOptions opts;
  opts.restart = 15;
  opts.recycle = 5;
  opts.max_iterations = 3000;
  const auto st = lgmres<cplx>(op, nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
}

TEST(EdgeCases, NonZeroInitialGuessGcroDr) {
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 0.1);
  SolverOptions opts;
  opts.restart = 15;
  opts.recycle = 5;
  GcroDr<double> solver(opts);
  Rng rng(13);
  std::vector<double> x(b.size());
  for (auto& v : x) v = rng.scalar<double>();
  const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                               MatrixView<double>(x.data(), n, 1, n));
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
}

// ---------------------------------------------------------------------------
// Degenerate inputs: every solver entry point must handle a zero RHS
// column, duplicated RHS columns, and a singular operator by terminating
// with either success or a precise SolveStatus — never a crash or hang.

// One nx2 solve per entry point, sharing the dispatch with the chaos suite.
template <class Fn>
void for_each_block_entry(Fn&& fn) {
  fn("cg", [](const CsrMatrix<double>& a, MatrixView<const double> b, MatrixView<double> x,
              const SolverOptions& o) {
    CsrOperator<double> op(a);
    return cg<double>(op, nullptr, b, x, o);
  });
  fn("block_cg", [](const CsrMatrix<double>& a, MatrixView<const double> b, MatrixView<double> x,
                    const SolverOptions& o) {
    CsrOperator<double> op(a);
    return block_cg<double>(op, nullptr, b, x, o);
  });
  fn("block_gmres", [](const CsrMatrix<double>& a, MatrixView<const double> b,
                       MatrixView<double> x, const SolverOptions& o) {
    CsrOperator<double> op(a);
    return block_gmres<double>(op, nullptr, b, x, o);
  });
  fn("pseudo_block_gmres", [](const CsrMatrix<double>& a, MatrixView<const double> b,
                              MatrixView<double> x, const SolverOptions& o) {
    CsrOperator<double> op(a);
    return pseudo_block_gmres<double>(op, nullptr, b, x, o);
  });
  fn("gcrodr", [](const CsrMatrix<double>& a, MatrixView<const double> b, MatrixView<double> x,
                  const SolverOptions& o) {
    CsrOperator<double> op(a);
    GcroDr<double> solver(o);
    return solver.solve(op, nullptr, b, x);
  });
  fn("pseudo_gcrodr", [](const CsrMatrix<double>& a, MatrixView<const double> b,
                         MatrixView<double> x, const SolverOptions& o) {
    CsrOperator<double> op(a);
    PseudoGcroDr<double> solver(o);
    return solver.solve(op, nullptr, b, x);
  });
}

TEST(EdgeCases, ZeroRhsColumnAcrossSolvers) {
  const auto a = poisson2d(8, 8);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 2);
  const auto f = poisson2d_rhs(8, 8, 0.1);
  std::copy(f.begin(), f.end(), b.col(0));  // column 1 stays exactly zero
  for_each_block_entry([&](const char* name, auto run) {
    SCOPED_TRACE(name);
    SolverOptions opts;
    opts.restart = 20;
    opts.recycle = 4;
    opts.max_iterations = 500;
    DenseMatrix<double> x(n, 2);
    SolveStats st;
    ASSERT_NO_THROW(st = run(a, b.view(), x.view(), opts));
    EXPECT_EQ(st.converged, st.status == SolveStatus::Converged);
    if (st.converged) {
      // The zero column's solution must stay (numerically) zero.
      for (index_t i = 0; i < n; ++i) EXPECT_LT(std::abs(x(i, 1)), 1e-8);
    }
  });
}

TEST(EdgeCases, DuplicatedRhsColumnsAcrossSolvers) {
  const auto a = poisson2d(8, 8);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 2);
  const auto f = poisson2d_rhs(8, 8, 1.0);
  std::copy(f.begin(), f.end(), b.col(0));
  std::copy(f.begin(), f.end(), b.col(1));
  for_each_block_entry([&](const char* name, auto run) {
    SCOPED_TRACE(name);
    SolverOptions opts;
    opts.restart = 30;
    opts.recycle = 4;
    opts.max_iterations = 500;
    DenseMatrix<double> x(n, 2);
    SolveStats st;
    ASSERT_NO_THROW(st = run(a, b.view(), x.view(), opts));
    EXPECT_EQ(st.converged, st.status == SolveStatus::Converged);
    EXPECT_LE(st.iterations, opts.max_iterations);
    if (st.converged)
      for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x(i, 0), x(i, 1), 1e-5);
  });
}

TEST(EdgeCases, SingularOperatorInconsistentRhsAcrossSolvers) {
  // diag(1, ..., 1, 0) with b touching the null space: no solution exists.
  // Acceptable outcomes are only the precise failure statuses.
  const index_t n = 16;
  CooBuilder<double> builder(n, n);
  for (index_t i = 0; i < n; ++i) builder.add(i, i, i + 1 < n ? 1.0 : 0.0);
  const auto a = builder.build();
  DenseMatrix<double> b(n, 2);
  for (index_t i = 0; i < n; ++i) b(i, 0) = b(i, 1) = 1.0;  // last row inconsistent
  b(0, 1) = 2.0;  // keep the block full rank
  for_each_block_entry([&](const char* name, auto run) {
    SCOPED_TRACE(name);
    SolverOptions opts;
    opts.restart = 8;
    opts.recycle = 2;
    opts.max_iterations = 60;
    DenseMatrix<double> x(n, 2);
    SolveStats st;
    ASSERT_NO_THROW(st = run(a, b.view(), x.view(), opts));
    EXPECT_FALSE(st.converged);
    EXPECT_TRUE(st.status == SolveStatus::MaxIterations || st.status == SolveStatus::Stagnated ||
                st.status == SolveStatus::Breakdown ||
                st.status == SolveStatus::NonFiniteResidual)
        << "status = " << status_name(st.status);
  });
}

}  // namespace
}  // namespace bkr
