// Determinism: every solver is seeded and branch-free with respect to its
// environment, so reruns are bit-identical, attaching a trace perturbs
// nothing, and the JSON export of a given trace is stable.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/block_cg.hpp"
#include "core/cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "fem/poisson2d.hpp"
#include "precond/jacobi.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::random_matrix;

std::vector<double> seeded_rhs(index_t n, unsigned seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<size_t>(n));
  for (auto& v : b) v = rng.scalar<double>();
  return b;
}

TEST(TraceDeterminism, SameSeedBitIdenticalSolve) {
  // Two runs from the same seeded inputs produce bit-identical solutions,
  // histories and counters.
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  const auto b = seeded_rhs(n, 91);
  SolverOptions opts;
  opts.restart = 20;
  opts.tol = 1e-9;
  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto s1 = gmres<double>(op, &m, b, x1, opts);
  const auto s2 = gmres<double>(op, &m, b, x2, opts);
  ASSERT_TRUE(s1.converged);
  EXPECT_EQ(s1.iterations, s2.iterations);
  EXPECT_EQ(s1.cycles, s2.cycles);
  EXPECT_EQ(s1.reductions, s2.reductions);
  EXPECT_EQ(x1, x2);              // bitwise
  EXPECT_EQ(s1.history, s2.history);  // bitwise
}

TEST(TraceDeterminism, TraceDoesNotPerturbTheSolve) {
  // The null-sink zero-overhead claim has a correctness side: running
  // with a sink attached takes the same code path, so solution, history
  // and counters are bit-identical to the untraced run.
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  const auto b = random_matrix<double>(n, 3, 92);
  SolverOptions opts;
  opts.restart = 18;
  opts.tol = 1e-9;
  DenseMatrix<double> x1(n, 3), x2(n, 3);
  x1.set_zero();
  x2.set_zero();
  const auto plain = block_gmres<double>(op, &m, b.view(), x1.view(), opts);
  obs::SolverTrace trace;
  auto topts = opts;
  topts.trace = &trace;
  const auto traced = block_gmres<double>(op, &m, b.view(), x2.view(), topts);
  ASSERT_TRUE(plain.converged);
  EXPECT_EQ(plain.iterations, traced.iterations);
  EXPECT_EQ(plain.reductions, traced.reductions);
  EXPECT_EQ(plain.operator_applies, traced.operator_applies);
  EXPECT_EQ(plain.history, traced.history);  // bitwise
  for (index_t c = 0; c < 3; ++c)
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(x1(i, c), x2(i, c)) << "(" << i << "," << c << ")";
}

TEST(TraceDeterminism, TraceEventsBitIdenticalAcrossRuns) {
  // Two traced runs agree on every structural field and on the recorded
  // residuals bit-for-bit; only the measured seconds may differ.
  const auto a = poisson2d(11, 11);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = seeded_rhs(n, 93);
  auto run = [&](obs::SolverTrace& trace) {
    SolverOptions opts;
    opts.restart = 15;
    opts.recycle = 5;
    opts.tol = 1e-9;
    opts.trace = &trace;
    GcroDr<double> solver(opts);
    for (int s = 0; s < 2; ++s) {
      std::vector<double> x(b.size(), 0.0);
      ASSERT_TRUE(solver
                      .solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                             MatrixView<double>(x.data(), n, 1, n), nullptr, false)
                      .converged);
    }
  };
  obs::SolverTrace t1, t2;
  run(t1);
  run(t2);
  ASSERT_EQ(t1.solves().size(), t2.solves().size());
  for (size_t s = 0; s < t1.solves().size(); ++s) {
    const auto& r1 = t1.solves()[s];
    const auto& r2 = t2.solves()[s];
    EXPECT_EQ(r1.method, r2.method);
    EXPECT_EQ(r1.n, r2.n);
    EXPECT_EQ(r1.nrhs, r2.nrhs);
    EXPECT_EQ(r1.converged, r2.converged);
    EXPECT_EQ(r1.iterations, r2.iterations);
    EXPECT_EQ(r1.cycles, r2.cycles);
    for (int ph = 0; ph < obs::kPhaseCount; ++ph)
      EXPECT_EQ(r1.phases[ph].count, r2.phases[ph].count) << "solve " << s << " phase " << ph;
    ASSERT_EQ(r1.events.size(), r2.events.size());
    for (size_t e = 0; e < r1.events.size(); ++e) {
      EXPECT_EQ(r1.events[e].cycle, r2.events[e].cycle);
      EXPECT_EQ(r1.events[e].iteration, r2.events[e].iteration);
      EXPECT_EQ(r1.events[e].basis_size, r2.events[e].basis_size);
      EXPECT_EQ(r1.events[e].recycle_dim, r2.events[e].recycle_dim);
      EXPECT_EQ(r1.events[e].residuals, r2.events[e].residuals);  // bitwise
    }
  }
}

TEST(TraceDeterminism, JsonExportStable) {
  // Exporting the same trace twice yields identical bytes (the %.17g
  // doubles round-trip), and the document carries the schema marker.
  const auto a = poisson2d(10, 10);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 4.0);
  obs::SolverTrace trace;
  SolverOptions opts;
  opts.restart = 30;
  opts.tol = 1e-8;
  opts.trace = &trace;
  std::vector<double> x(b.size(), 0.0);
  ASSERT_TRUE(gmres<double>(op, nullptr, b, x, opts).converged);
  std::ostringstream o1, o2, csv;
  trace.write_json(o1);
  trace.write_json(o2);
  trace.write_csv(csv);
  EXPECT_FALSE(o1.str().empty());
  EXPECT_EQ(o1.str(), o2.str());
  EXPECT_NE(o1.str().find("\"schema\":\"bkr-trace-1\""), std::string::npos);
  EXPECT_NE(o1.str().find("\"block_gmres\""), std::string::npos);
  EXPECT_NE(csv.str().find("solve,method,phase,seconds,count"), std::string::npos);
}

TEST(TraceDeterminism, RecordHistoryOffLeavesHistoryEmptyEverySolver) {
  // record_history=false suppresses the per-iteration residual log (the
  // C API default) in every method, without changing anything else about
  // the solve.
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  const auto bm = random_matrix<double>(n, 2, 94);
  const auto b1 = seeded_rhs(n, 95);
  SolverOptions base;
  base.restart = 30;
  base.recycle = 4;
  base.tol = 1e-9;
  base.record_history = false;

  auto check = [&](const SolveStats& st, const char* label) {
    ASSERT_TRUE(st.converged) << label;
    ASSERT_FALSE(st.history.empty()) << label;
    for (const auto& h : st.history) EXPECT_TRUE(h.empty()) << label;
  };
  {
    DenseMatrix<double> x(n, 2);
    x.set_zero();
    check(block_gmres<double>(op, &m, bm.view(), x.view(), base), "block_gmres");
  }
  {
    DenseMatrix<double> x(n, 2);
    x.set_zero();
    check(pseudo_block_gmres<double>(op, &m, bm.view(), x.view(), base), "pseudo_block_gmres");
  }
  {
    std::vector<double> x(b1.size(), 0.0);
    check(lgmres<double>(op, &m, b1, x, base), "lgmres");
  }
  {
    DenseMatrix<double> x(n, 2);
    x.set_zero();
    check(cg<double>(op, &m, bm.view(), x.view(), base), "cg");
  }
  {
    DenseMatrix<double> x(n, 2);
    x.set_zero();
    check(block_cg<double>(op, &m, bm.view(), x.view(), base), "block_cg");
  }
  {
    GcroDr<double> solver(base);
    std::vector<double> x(b1.size(), 0.0);
    check(solver.solve(op, &m, MatrixView<const double>(b1.data(), n, 1, n),
                       MatrixView<double>(x.data(), n, 1, n)),
          "gcrodr");
  }
  {
    PseudoGcroDr<double> solver(base);
    DenseMatrix<double> x(n, 2);
    x.set_zero();
    check(solver.solve(op, &m, bm.view(), x.view()), "pseudo_gcrodr");
  }
  // And the flag changes nothing else: the solution is bit-identical.
  auto hopts = base;
  hopts.record_history = true;
  DenseMatrix<double> x1(n, 2), x2(n, 2);
  x1.set_zero();
  x2.set_zero();
  const auto with = block_gmres<double>(op, &m, bm.view(), x1.view(), hopts);
  const auto without = block_gmres<double>(op, &m, bm.view(), x2.view(), base);
  ASSERT_TRUE(with.converged);
  EXPECT_EQ(with.iterations, without.iterations);
  EXPECT_EQ(with.reductions, without.reductions);
  for (const auto& h : with.history) EXPECT_FALSE(h.empty());
  for (index_t c = 0; c < 2; ++c)
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(x1(i, c), x2(i, c));
}

}  // namespace
}  // namespace bkr
