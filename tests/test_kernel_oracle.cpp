// Serial-oracle equivalence suite for the parallel hot-path kernels.
//
// The determinism contract (src/parallel/kernel_executor.hpp) makes two
// distinct promises, and this suite checks both against executors with
// 1, 2, 7 and hardware_concurrency lanes, for double and complex<double>,
// including empty / 1-row / tall-skinny / non-divisible-by-chunk shapes:
//  * partition-type kernels (spmv, spmm, gemm, herk, trsm) are bitwise
//    identical to the legacy serial code at every thread count;
//  * reduction-type kernels (dot, norm2, column_norms) are bitwise
//    identical across thread counts (fixed chunk tree), and agree with
//    the legacy straight sum to rounding.
// Cutoffs are set to 1 so even tiny shapes take the executor path.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/dense.hpp"
#include "la/qr.hpp"
#include "parallel/kernel_executor.hpp"
#include "sparse/csr.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

constexpr KernelCutoffs kForceParallel{1, 1, 1};

// Executors under test: the contract must hold at every lane count,
// including the degenerate 1-lane executor (which must equal the pooled
// schedules bitwise, not just the legacy serial code).
std::vector<std::unique_ptr<KernelExecutor>> test_executors() {
  std::vector<std::unique_ptr<KernelExecutor>> out;
  out.push_back(std::make_unique<KernelExecutor>(index_t(1), kForceParallel));
  out.push_back(std::make_unique<KernelExecutor>(index_t(2), kForceParallel));
  out.push_back(std::make_unique<KernelExecutor>(index_t(7), kForceParallel));
  const index_t hw = index_t(std::thread::hardware_concurrency());
  if (hw > 0 && hw != 1 && hw != 2 && hw != 7)
    out.push_back(std::make_unique<KernelExecutor>(hw, kForceParallel));
  return out;
}

template <class T>
void expect_identical(MatrixView<const T> got, MatrixView<const T> want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (index_t j = 0; j < want.cols(); ++j)
    for (index_t i = 0; i < want.rows(); ++i)
      EXPECT_EQ(got(i, j), want(i, j)) << what << " at (" << i << "," << j << ")";
}

// Random sparse matrix with deliberately skewed row lengths so the
// nnz-balanced splits place boundaries unevenly.
template <class T>
CsrMatrix<T> skewed_sparse(index_t rows, index_t cols, unsigned seed) {
  Rng rng(seed);
  CooBuilder<T> coo(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    const index_t len = (i < 2) ? std::min<index_t>(cols, 32) : 1 + (i % 5);
    for (index_t l = 0; l < len; ++l) coo.add(i, rng.index(0, cols - 1), rng.scalar<T>());
  }
  return coo.build();
}

// ---------------------------------------------------------------------------
// Partition-type kernels: bitwise equal to the legacy serial reference.
// ---------------------------------------------------------------------------

template <class T>
void check_spmv_spmm(index_t rows, index_t cols, index_t p, unsigned seed) {
  const CsrMatrix<T> a = skewed_sparse<T>(rows, cols, seed);
  const DenseMatrix<T> x = testing::random_matrix<T>(cols, p, seed + 1);
  DenseMatrix<T> want(rows, p);
  a.spmm(MatrixView<const T>(x.data(), cols, p, x.ld()), want.view());  // legacy serial
  for (const auto& ex : test_executors()) {
    DenseMatrix<T> got(rows, p);
    got.set_zero();
    a.spmm(MatrixView<const T>(x.data(), cols, p, x.ld()), got.view(), ex.get());
    expect_identical<T>(MatrixView<const T>(got.data(), rows, p, got.ld()),
                        MatrixView<const T>(want.data(), rows, p, want.ld()), "spmm");
    if (p == 1 && rows > 0) {
      std::vector<T> yv(size_t(rows), T(42));
      a.spmv(x.col(0), yv.data(), ex.get());
      for (index_t i = 0; i < rows; ++i) EXPECT_EQ(yv[size_t(i)], want(i, 0)) << "spmv row " << i;
    }
  }
}

TEST(KernelOracle, SpmvSpmmMatchSerialBitwise) {
  for (index_t p : {index_t(1), index_t(4), index_t(7)}) {
    check_spmv_spmm<double>(200, 150, p, 11);
    check_spmv_spmm<std::complex<double>>(200, 150, p, 12);
  }
  // Edge shapes: empty, single row, tall-skinny input block.
  check_spmv_spmm<double>(0, 5, 3, 13);
  check_spmv_spmm<double>(1, 9, 1, 14);
  check_spmv_spmm<std::complex<double>>(1, 1, 2, 15);
  check_spmv_spmm<double>(513, 4, 2, 16);
}

TEST(KernelOracle, BalancedRowSplitsPartitionAllRows) {
  const CsrMatrix<double> a = skewed_sparse<double>(101, 60, 3);
  for (index_t parts : {index_t(1), index_t(2), index_t(7), index_t(101)}) {
    const auto splits = balanced_row_splits(a.rowptr(), a.rows(), parts);
    ASSERT_EQ(index_t(splits.size()), parts + 1);
    EXPECT_EQ(splits.front(), 0);
    EXPECT_EQ(splits.back(), a.rows());
    for (size_t i = 1; i < splits.size(); ++i) EXPECT_LE(splits[i - 1], splits[i]);
  }
  // Degenerate: empty matrix.
  const auto empty = balanced_row_splits(std::vector<index_t>{0}, 0, 4);
  EXPECT_EQ(empty.front(), 0);
  EXPECT_EQ(empty.back(), 0);
}

template <class T>
void check_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, unsigned seed) {
  const DenseMatrix<T> a = testing::random_matrix<T>(ta == Trans::N ? m : k,
                                                     ta == Trans::N ? k : m, seed);
  const DenseMatrix<T> b = testing::random_matrix<T>(tb == Trans::N ? k : n,
                                                     tb == Trans::N ? n : k, seed + 1);
  const DenseMatrix<T> c0 = testing::random_matrix<T>(m, n, seed + 2);
  const T alpha = T(2) / T(3), beta = T(1) / T(7);
  DenseMatrix<T> want = copy_of(c0);
  gemm<T>(ta, tb, alpha, a.view(), b.view(), beta, want.view());  // legacy serial
  for (const auto& ex : test_executors()) {
    DenseMatrix<T> got = copy_of(c0);
    gemm<T>(ta, tb, alpha, a.view(), b.view(), beta, got.view(), ex.get());
    expect_identical<T>(MatrixView<const T>(got.data(), m, n, got.ld()),
                        MatrixView<const T>(want.data(), m, n, want.ld()), "gemm");
  }
}

TEST(KernelOracle, GemmAllTransCasesMatchSerialBitwise) {
  unsigned seed = 100;
  for (Trans ta : {Trans::N, Trans::C})
    for (Trans tb : {Trans::N, Trans::C}) {
      check_gemm<double>(ta, tb, 33, 7, 5, seed += 10);       // non-divisible panels
      check_gemm<double>(ta, tb, 257, 3, 4, seed += 10);      // tall-skinny
      check_gemm<double>(ta, tb, 1, 1, 64, seed += 10);       // single entry
      check_gemm<double>(ta, tb, 4, 0, 3, seed += 10);        // empty output
      check_gemm<double>(ta, tb, 5, 6, 0, seed += 10);        // empty inner dim
      check_gemm<std::complex<double>>(ta, tb, 33, 7, 5, seed += 10);
      check_gemm<std::complex<double>>(ta, tb, 257, 3, 4, seed += 10);
    }
}

template <class T>
void check_herk_gram(index_t n, index_t p, unsigned seed) {
  const DenseMatrix<T> v = testing::random_matrix<T>(n, p, seed);
  const auto vc = MatrixView<const T>(v.data(), n, p, v.ld());
  DenseMatrix<T> want(p, p);
  gram<T>(vc, want.view());  // legacy path (null executor)
  for (const auto& ex : test_executors()) {
    DenseMatrix<T> got(p, p);
    gram<T>(vc, got.view(), ex.get());
    expect_identical<T>(MatrixView<const T>(got.data(), p, p, got.ld()),
                        MatrixView<const T>(want.data(), p, p, want.ld()), "gram/herk");
    // herk with nonzero alpha/beta stays lane-invariant too.
    DenseMatrix<T> c1 = testing::random_matrix<T>(p, p, seed + 1);
    DenseMatrix<T> c2 = copy_of(c1);
    herk<T>(Trans::C, T(3), vc, T(2), c1.view());
    herk<T>(Trans::C, T(3), vc, T(2), c2.view(), ex.get());
    expect_identical<T>(MatrixView<const T>(c2.data(), p, p, c2.ld()),
                        MatrixView<const T>(c1.data(), p, p, c1.ld()), "herk");
  }
}

TEST(KernelOracle, HerkGramMatchSerialBitwise) {
  check_herk_gram<double>(300, 6, 21);
  check_herk_gram<std::complex<double>>(300, 6, 22);
  check_herk_gram<double>(5000, 3, 23);  // tall-skinny, spans many chunks
  check_herk_gram<double>(1, 4, 24);
  check_herk_gram<std::complex<double>>(0, 3, 25);  // empty rows
  check_herk_gram<double>(64, 1, 26);               // single pair
}

template <class T>
void check_trsm(index_t n, index_t p, unsigned seed) {
  // Well-conditioned upper triangular factor.
  DenseMatrix<T> r = testing::random_matrix<T>(p, p, seed);
  for (index_t j = 0; j < p; ++j) {
    r(j, j) = T(4) + r(j, j);
    for (index_t i = j + 1; i < p; ++i) r(i, j) = T(0);
  }
  const auto rc = MatrixView<const T>(r.data(), p, p, r.ld());
  const DenseMatrix<T> x0 = testing::random_matrix<T>(n, p, seed + 1);
  DenseMatrix<T> want = copy_of(x0);
  trsm_right_upper<T>(rc, want.view());  // legacy serial
  for (const auto& ex : test_executors()) {
    DenseMatrix<T> got = copy_of(x0);
    trsm_right_upper<T>(rc, got.view(), ex.get());
    expect_identical<T>(MatrixView<const T>(got.data(), n, p, got.ld()),
                        MatrixView<const T>(want.data(), n, p, want.ld()), "trsm_right");
  }
  // Left solves fan out over columns; square system, p right-hand sides.
  const DenseMatrix<T> y0 = testing::random_matrix<T>(p, std::max<index_t>(n % 9, 1), seed + 2);
  DenseMatrix<T> wl = copy_of(y0), wlc = copy_of(y0);
  trsm_left_upper<T>(rc, wl.view());
  trsm_left_upper_conj<T>(rc, wlc.view());
  for (const auto& ex : test_executors()) {
    DenseMatrix<T> gl = copy_of(y0), glc = copy_of(y0);
    trsm_left_upper<T>(rc, gl.view(), ex.get());
    trsm_left_upper_conj<T>(rc, glc.view(), ex.get());
    expect_identical<T>(MatrixView<const T>(gl.data(), gl.rows(), gl.cols(), gl.ld()),
                        MatrixView<const T>(wl.data(), wl.rows(), wl.cols(), wl.ld()),
                        "trsm_left");
    expect_identical<T>(MatrixView<const T>(glc.data(), glc.rows(), glc.cols(), glc.ld()),
                        MatrixView<const T>(wlc.data(), wlc.rows(), wlc.cols(), wlc.ld()),
                        "trsm_left_conj");
  }
}

TEST(KernelOracle, TrsmMatchesSerialBitwise) {
  check_trsm<double>(400, 5, 31);
  check_trsm<std::complex<double>>(400, 5, 32);
  check_trsm<double>(1, 3, 33);
  check_trsm<double>(4097, 2, 34);  // non-divisible row blocks
}

// CholQR composes gram + cholesky + trsm; the full factorization must be
// lane-invariant (it is the qr_block inside every solver).
template <class T>
void check_cholqr(index_t n, index_t p, unsigned seed) {
  const DenseMatrix<T> v0 = testing::random_matrix<T>(n, p, seed);
  DenseMatrix<T> vwant = copy_of(v0), rwant(p, p);
  ASSERT_TRUE(cholqr<T>(vwant.view(), rwant.view()));
  for (const auto& ex : test_executors()) {
    DenseMatrix<T> v = copy_of(v0), r(p, p);
    ASSERT_TRUE(cholqr<T>(v.view(), r.view(), ex.get()));
    expect_identical<T>(MatrixView<const T>(v.data(), n, p, v.ld()),
                        MatrixView<const T>(vwant.data(), n, p, vwant.ld()), "cholqr Q");
    expect_identical<T>(MatrixView<const T>(r.data(), p, p, r.ld()),
                        MatrixView<const T>(rwant.data(), p, p, rwant.ld()), "cholqr R");
  }
}

TEST(KernelOracle, CholQrMatchesSerialBitwise) {
  check_cholqr<double>(500, 4, 41);
  check_cholqr<std::complex<double>>(500, 4, 42);
  check_cholqr<double>(6151, 3, 43);  // tall-skinny across chunk boundaries
}

// ---------------------------------------------------------------------------
// Reduction-type kernels: bitwise invariant across thread counts, and
// within rounding of the legacy straight sum.
// ---------------------------------------------------------------------------

template <class T>
void check_reductions(index_t n, unsigned seed) {
  using Real = real_t<T>;
  Rng rng(seed);
  std::vector<T> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (auto& v : x) v = rng.scalar<T>();
  for (auto& v : y) v = rng.scalar<T>();

  const auto exs = test_executors();
  // Reference: the 1-lane executor result (deterministic chunked order).
  const T d_ref = dot<T>(n, x.data(), y.data(), exs[0].get());
  const Real n_ref = norm2<T>(n, x.data(), exs[0].get());
  for (const auto& ex : exs) {
    EXPECT_EQ(dot<T>(n, x.data(), y.data(), ex.get()), d_ref) << "dot n=" << n;
    EXPECT_EQ(norm2<T>(n, x.data(), ex.get()), n_ref) << "norm2 n=" << n;
  }
  // Legacy straight sum agrees to rounding (not necessarily bitwise).
  const T d_legacy = dot<T>(n, x.data(), y.data());
  const Real scale = std::max<Real>(abs_val(d_legacy), Real(1));
  EXPECT_LE(abs_val(d_ref - d_legacy), Real(1e-12) * Real(double(n) + 1.0) * scale);
  const Real nl = norm2<T>(n, x.data());
  EXPECT_LE(std::abs(n_ref - nl), Real(1e-12) * (nl + Real(1)));
}

TEST(KernelOracle, DotNormThreadCountInvariant) {
  for (index_t n : {index_t(0), index_t(1), index_t(5), kReduceChunk - 1, kReduceChunk,
                    kReduceChunk + 1, 2 * kReduceChunk + 17, index_t(10000)}) {
    check_reductions<double>(n, 51);
    check_reductions<std::complex<double>>(n, 52);
  }
}

template <class T>
void check_column_norms(index_t n, index_t p, unsigned seed) {
  using Real = real_t<T>;
  const DenseMatrix<T> x = testing::random_matrix<T>(n, p, seed);
  const auto xc = MatrixView<const T>(x.data(), n, p, x.ld());
  const auto exs = test_executors();
  std::vector<Real> ref(size_t(p), Real(-1));
  column_norms<T>(xc, ref.data(), exs[0].get());
  for (const auto& ex : exs) {
    std::vector<Real> got(size_t(p), Real(-1));
    column_norms<T>(xc, got.data(), ex.get());
    for (index_t j = 0; j < p; ++j) EXPECT_EQ(got[size_t(j)], ref[size_t(j)]) << "col " << j;
  }
  std::vector<Real> legacy(size_t(p), Real(-1));
  column_norms<T>(xc, legacy.data());
  for (index_t j = 0; j < p; ++j)
    EXPECT_LE(std::abs(ref[size_t(j)] - legacy[size_t(j)]),
              Real(1e-12) * (legacy[size_t(j)] + Real(1)));
}

TEST(KernelOracle, ColumnNormsThreadCountInvariant) {
  check_column_norms<double>(4099, 7, 61);  // chunk-straddling, odd p
  check_column_norms<std::complex<double>>(4099, 7, 62);
  check_column_norms<double>(0, 3, 63);  // empty columns -> all zeros
  check_column_norms<double>(1, 1, 64);
  check_column_norms<double>(kReduceChunk * 2, 4, 65);
}

// The executor path must also be selected lane-independently: below the
// cutoff every executor (and the null executor) takes the identical
// legacy path, so results are bitwise equal to serial even for reductions.
TEST(KernelOracle, CutoffSelectionIsLaneIndependent) {
  const KernelCutoffs big{1 << 30, 1 << 30, 1 << 30};
  KernelExecutor ex2(index_t(2), big);
  KernelExecutor ex7(index_t(7), big);
  Rng rng(71);
  std::vector<double> x(3000), y(3000);
  for (auto& v : x) v = rng.scalar<double>();
  for (auto& v : y) v = rng.scalar<double>();
  const double want = dot<double>(3000, x.data(), y.data());
  EXPECT_EQ(dot<double>(3000, x.data(), y.data(), &ex2), want);
  EXPECT_EQ(dot<double>(3000, x.data(), y.data(), &ex7), want);
}

// Kernel stats: enabled executors attribute calls and seconds per kernel.
TEST(KernelOracle, KernelStatsRecordCalls) {
  KernelExecutor ex(index_t(2), kForceParallel);
  ex.stats().enable(true);
  const CsrMatrix<double> a = skewed_sparse<double>(64, 64, 81);
  std::vector<double> x(64, 1.0), y(64, 0.0);
  a.spmv(x.data(), y.data(), &ex);
  const auto t = ex.stats().totals(obs::Kernel::Spmv);
  EXPECT_EQ(t.calls, 1);
  EXPECT_GE(t.seconds, 0.0);
  ex.stats().reset();
  EXPECT_EQ(ex.stats().totals(obs::Kernel::Spmv).calls, 0);
}

}  // namespace
}  // namespace bkr
