// SolverWorkspace conformance suite (DESIGN.md §11).
//
// The contract under test (core/workspace.hpp): a workspace slot acquire
// has fresh zero-initialized-object semantics, only the backing storage is
// reused. Therefore a solve must be bitwise identical — solution, residual
// histories, iteration/reduction counts — whichever way the workspace is
// provided:
//   * no workspace attached (the per-solve one-shot fallback inside
//     detail::run_solver_ws),
//   * a freshly constructed caller-attached workspace,
//   * a WARM caller-attached workspace whose slots already carry the
//     capacity (and stale values) of a previous solve,
//   * a warm workspace previously used by a *different* solver,
//   * a workspace of the wrong scalar type (the resolve_workspace
//     downcast must fall back to the one-shot path, not corrupt the solve).
// All of it at 1 and 4 executor lanes, for double and complex scalars.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "core/block_cg.hpp"
#include "core/cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "core/operator.hpp"
#include "core/workspace.hpp"
#include "fem/poisson2d.hpp"
#include "parallel/kernel_executor.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;

constexpr KernelCutoffs kForceParallel{1, 1, 1};

DenseMatrix<double> poisson_rhs_block(index_t nx, index_t ny, index_t p) {
  const auto base = poisson2d_rhs(nx, ny, 0.1);
  const index_t n = index_t(base.size());
  DenseMatrix<double> b(n, p);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i)
      b(i, c) = base[size_t(i)] + 0.05 * double(c) * std::sin(double(i + 1) * double(c + 1));
  return b;
}

// Complex shifted Poisson (same spectrum-shifting trick as the complex
// session conformance test).
CsrMatrix<cplx> shifted_poisson(index_t nx, index_t ny) {
  const auto ar = poisson2d(nx, ny);
  const index_t n = ar.rows();
  CooBuilder<cplx> builder(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t l = ar.rowptr()[size_t(i)]; l < ar.rowptr()[size_t(i) + 1]; ++l)
      builder.add(i, ar.colind()[size_t(l)],
                  cplx(ar.values()[size_t(l)], 0) -
                      (ar.colind()[size_t(l)] == i ? cplx(0.05, -0.05) : cplx(0)));
  return builder.build();
}

void expect_same_stats(const SolveStats& got, const SolveStats& ref, index_t lanes,
                       const char* what) {
  EXPECT_EQ(got.converged, ref.converged) << what << " lanes=" << lanes;
  EXPECT_EQ(got.status, ref.status) << what << " lanes=" << lanes;
  EXPECT_EQ(got.iterations, ref.iterations) << what << " lanes=" << lanes;
  EXPECT_EQ(got.cycles, ref.cycles) << what << " lanes=" << lanes;
  EXPECT_EQ(got.reductions, ref.reductions) << what << " lanes=" << lanes;
  EXPECT_EQ(got.operator_applies, ref.operator_applies) << what << " lanes=" << lanes;
  EXPECT_EQ(got.per_rhs_iterations, ref.per_rhs_iterations) << what << " lanes=" << lanes;
  ASSERT_EQ(got.history.size(), ref.history.size()) << what << " lanes=" << lanes;
  for (size_t c = 0; c < ref.history.size(); ++c)
    EXPECT_EQ(got.history[c], ref.history[c])
        << what << " lanes=" << lanes << " rhs=" << c << " (residual history diverged)";
}

template <class T>
void expect_same_solution(const DenseMatrix<T>& got, const DenseMatrix<T>& ref, index_t lanes,
                          const char* what) {
  ASSERT_EQ(got.rows(), ref.rows());
  ASSERT_EQ(got.cols(), ref.cols());
  for (index_t j = 0; j < ref.cols(); ++j)
    for (index_t i = 0; i < ref.rows(); ++i)
      EXPECT_EQ(got(i, j), ref(i, j))
          << what << " lanes=" << lanes << " x(" << i << "," << j << ")";
}

// `run(op, b, x, opts)` performs one structurally identical solve per call
// (stateful solvers construct a fresh instance inside). OtherT is the
// deliberately mismatched workspace scalar for the fallback variant.
template <class T, class OtherT, class Run>
void check_workspace_conformance(const CsrMatrix<T>& a, const DenseMatrix<T>& b, Run run,
                                 const char* what) {
  for (index_t lanes : {index_t(1), index_t(4)}) {
    KernelExecutor ex(lanes, kForceParallel);
    CsrOperator<T> op(a, nullptr, &ex);
    SolverOptions opts;
    opts.restart = 25;
    opts.recycle = 2;
    opts.tol = 1e-9;
    opts.exec = &ex;

    // Reference: no workspace attached (per-solve one-shot fallback).
    DenseMatrix<T> xref(a.rows(), b.cols());
    const SolveStats ref = run(op, b, xref, opts);
    EXPECT_TRUE(ref.converged) << what << " lanes=" << lanes;

    // Cold then warm caller-attached workspace: the warm pass re-acquires
    // every slot over the stale values of the cold pass.
    SolverWorkspace<T> ws;
    opts.workspace = &ws;
    for (const char* pass : {"cold ws", "warm ws"}) {
      DenseMatrix<T> x(a.rows(), b.cols());
      const SolveStats st = run(op, b, x, opts);
      expect_same_stats(st, ref, lanes, (std::string(what) + " " + pass).c_str());
      expect_same_solution(x, xref, lanes, (std::string(what) + " " + pass).c_str());
    }

    // Scalar-type mismatch: resolve_workspace must fall back to the
    // one-shot path and still reproduce the reference bitwise.
    SolverWorkspace<OtherT> wrong;
    opts.workspace = &wrong;
    DenseMatrix<T> x(a.rows(), b.cols());
    const SolveStats st = run(op, b, x, opts);
    expect_same_stats(st, ref, lanes, (std::string(what) + " mismatched ws").c_str());
    expect_same_solution(x, xref, lanes, (std::string(what) + " mismatched ws").c_str());
  }
}

TEST(WorkspaceConformance, BlockGmres) {
  const auto a = poisson2d(12, 12);
  check_workspace_conformance<double, cplx>(
      a, poisson_rhs_block(12, 12, 2),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o) { return block_gmres<double>(op, nullptr, b.view(), x.view(), o); },
      "block_gmres");
}

TEST(WorkspaceConformance, PseudoBlockGmres) {
  const auto a = poisson2d(12, 12);
  check_workspace_conformance<double, cplx>(
      a, poisson_rhs_block(12, 12, 3),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o) {
        return pseudo_block_gmres<double>(op, nullptr, b.view(), x.view(), o);
      },
      "pseudo_block_gmres");
}

TEST(WorkspaceConformance, Cg) {
  const auto a = poisson2d(12, 12);
  check_workspace_conformance<double, cplx>(
      a, poisson_rhs_block(12, 12, 1),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o) { return cg<double>(op, nullptr, b.view(), x.view(), o); },
      "cg");
}

TEST(WorkspaceConformance, BlockCg) {
  const auto a = poisson2d(12, 12);
  check_workspace_conformance<double, cplx>(
      a, poisson_rhs_block(12, 12, 4),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o) { return block_cg<double>(op, nullptr, b.view(), x.view(), o); },
      "block_cg");
}

TEST(WorkspaceConformance, Lgmres) {
  const auto a = poisson2d(12, 12);
  check_workspace_conformance<double, cplx>(
      a, poisson_rhs_block(12, 12, 1),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o) {
        const index_t n = b.rows();
        std::vector<double> bv(b.col(0), b.col(0) + n), xv(size_t(n), 0.0);
        const SolveStats st = lgmres<double>(op, nullptr, bv, xv, o);
        std::copy(xv.begin(), xv.end(), x.col(0));
        return st;
      },
      "lgmres");
}

TEST(WorkspaceConformance, GcroDr) {
  const auto a = poisson2d(12, 12);
  check_workspace_conformance<double, cplx>(
      a, poisson_rhs_block(12, 12, 2),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o) {
        GcroDr<double> solver(o);  // fresh per call: structurally identical solves
        return solver.solve(op, nullptr, b.view(), x.view());
      },
      "gcrodr");
}

TEST(WorkspaceConformance, ComplexBlockGmres) {
  const auto a = shifted_poisson(10, 10);
  const index_t n = a.rows();
  Rng rng(97);
  DenseMatrix<cplx> b(n, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) b(i, j) = rng.scalar<cplx>();
  check_workspace_conformance<cplx, double>(
      a, b,
      [](CsrOperator<cplx>& op, const DenseMatrix<cplx>& bb, DenseMatrix<cplx>& x,
         const SolverOptions& o) { return block_gmres<cplx>(op, nullptr, bb.view(), x.view(), o); },
      "complex block_gmres");
}

TEST(WorkspaceConformance, ComplexGcroDr) {
  const auto a = shifted_poisson(10, 10);
  const index_t n = a.rows();
  Rng rng(101);
  DenseMatrix<cplx> b(n, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) b(i, j) = rng.scalar<cplx>();
  check_workspace_conformance<cplx, double>(
      a, b,
      [](CsrOperator<cplx>& op, const DenseMatrix<cplx>& bb, DenseMatrix<cplx>& x,
         const SolverOptions& o) {
        GcroDr<cplx> solver(o);
        return solver.solve(op, nullptr, bb.view(), x.view());
      },
      "complex gcrodr");
}

TEST(WorkspaceConformance, CrossSolverWorkspaceReuse) {
  // One workspace threaded through different solvers in turn: the stale
  // shapes and values each solver leaves behind must be invisible to the
  // next (zero-filled re-acquire), so every run matches its no-workspace
  // reference bitwise.
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 2);
  CsrOperator<double> op(a);
  SolverOptions opts;
  opts.restart = 25;
  opts.recycle = 2;
  opts.tol = 1e-9;

  DenseMatrix<double> xg_ref(a.rows(), 2), xd_ref(a.rows(), 2), xc_ref(a.rows(), 2);
  const SolveStats g_ref = block_gmres<double>(op, nullptr, b.view(), xg_ref.view(), opts);
  GcroDr<double> dr_ref(opts);
  const SolveStats d_ref = dr_ref.solve(op, nullptr, b.view(), xd_ref.view());
  const SolveStats c_ref = block_cg<double>(op, nullptr, b.view(), xc_ref.view(), opts);

  SolverWorkspace<double> ws;
  opts.workspace = &ws;
  DenseMatrix<double> xg(a.rows(), 2), xd(a.rows(), 2), xc(a.rows(), 2);
  const SolveStats g = block_gmres<double>(op, nullptr, b.view(), xg.view(), opts);
  GcroDr<double> dr(opts);
  const SolveStats d = dr.solve(op, nullptr, b.view(), xd.view());
  const SolveStats c = block_cg<double>(op, nullptr, b.view(), xc.view(), opts);

  expect_same_stats(g, g_ref, 0, "gmres after shared ws");
  expect_same_solution(xg, xg_ref, 0, "gmres after shared ws");
  expect_same_stats(d, d_ref, 0, "gcrodr after gmres in shared ws");
  expect_same_solution(xd, xd_ref, 0, "gcrodr after gmres in shared ws");
  expect_same_stats(c, c_ref, 0, "block_cg after gcrodr in shared ws");
  expect_same_solution(xc, xc_ref, 0, "block_cg after gcrodr in shared ws");
}

TEST(Workspace, SlotAcquireHasFreshObjectSemantics) {
  SolverWorkspace<double> ws;
  // First acquire: shaped and zero-filled.
  DenseMatrix<double>& m = ws.mat(3, 5, 4);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.cols(), 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 5; ++i) EXPECT_EQ(m(i, j), 0.0);
  m(2, 2) = 7.0;
  // Re-acquire at a smaller shape: stale values must not show through.
  DenseMatrix<double>& m2 = ws.mat(3, 3, 3);
  EXPECT_EQ(&m, &m2);  // same backing object
  EXPECT_EQ(m2.rows(), 3);
  EXPECT_EQ(m2.cols(), 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m2(i, j), 0.0);

  std::vector<double>& v = ws.dvec(0, 8);
  v[5] = 1.5;
  std::vector<double>& v2 = ws.dvec(0, 6);
  EXPECT_EQ(v2.size(), 6u);
  for (const double e : v2) EXPECT_EQ(e, 0.0);
}

TEST(Workspace, SlotReferencesSurviveGrowth) {
  // The deque-pool guarantee the solvers lean on: a reference to an early
  // slot stays valid while later slots are acquired.
  SolverWorkspace<double> ws;
  DenseMatrix<double>& early = ws.mat(0, 4, 4);
  early(1, 1) = 3.0;
  for (int slot = 1; slot < 40; ++slot) ws.mat(slot, 2, 2);
  EXPECT_EQ(early.rows(), 4);
  EXPECT_EQ(early(1, 1), 3.0);

  std::vector<double>& ev = ws.dvec(0, 3);
  ev[0] = 2.0;
  for (int slot = 1; slot < 40; ++slot) ws.dvec(slot, 2);
  EXPECT_EQ(ev[0], 2.0);
}

}  // namespace
}  // namespace bkr
