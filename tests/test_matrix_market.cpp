// Tests: Matrix Market I/O round trips and error handling.
#include <gtest/gtest.h>

#include <complex>
#include <cstdio>
#include <fstream>

#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "sparse/matrix_market.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(MatrixMarket, RealRoundTrip) {
  const auto a = poisson2d(7, 6);
  const auto path = temp_path("poisson.mtx");
  write_matrix_market(path, a);
  const auto back = read_matrix_market<double>(path);
  ASSERT_EQ(back.rows(), a.rows());
  ASSERT_EQ(back.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l)
      EXPECT_DOUBLE_EQ(back.at(i, a.colind()[size_t(l)]), a.values()[size_t(l)]);
  std::remove(path.c_str());
}

TEST(MatrixMarket, ComplexRoundTrip) {
  MaxwellConfig cfg;
  cfg.n = 4;
  cfg.loss = 0.3;
  const auto prob = maxwell3d(cfg);
  const auto path = temp_path("maxwell.mtx");
  write_matrix_market(path, prob.matrix);
  const auto back = read_matrix_market<cplx>(path);
  ASSERT_EQ(back.rows(), prob.matrix.rows());
  ASSERT_EQ(back.nnz(), prob.matrix.nnz());
  double diff = 0;
  for (index_t l = 0; l < back.nnz(); ++l)
    diff = std::max(diff, std::abs(back.values()[size_t(l)] - prob.matrix.values()[size_t(l)]));
  EXPECT_LT(diff, 1e-14);
  std::remove(path.c_str());
}

TEST(MatrixMarket, SymmetricExpansion) {
  const auto path = temp_path("sym.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n";
    out << "% a comment line\n";
    out << "3 3 4\n";
    out << "1 1 2.0\n2 2 2.0\n3 3 2.0\n2 1 -1.0\n";
  }
  const auto a = read_matrix_market<double>(path);
  EXPECT_EQ(a.nnz(), 5);  // the off-diagonal is mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  std::remove(path.c_str());
}

TEST(MatrixMarket, RejectsGarbage) {
  const auto path = temp_path("bad.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
  }
  EXPECT_THROW(read_matrix_market<double>(path), std::runtime_error);
  EXPECT_THROW(read_matrix_market<double>(temp_path("missing.mtx")), std::runtime_error);
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n";
  }
  EXPECT_THROW(read_matrix_market<double>(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(MatrixMarket, ComplexFileIntoRealMatrixFails) {
  const auto path = temp_path("cplx.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 2.0\n";
  }
  EXPECT_THROW(read_matrix_market<double>(path), std::runtime_error);
  const auto z = read_matrix_market<cplx>(path);
  EXPECT_EQ(z.nnz(), 1);
  EXPECT_LT(std::abs(z.at(0, 0) - cplx(1.0, 2.0)), 1e-15);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bkr
