// Solver-level thread-count conformance: with a KernelExecutor attached
// via SolverOptions::exec, every solver must produce identical iteration
// counts, residual histories and solutions at 1 lane and at N lanes.
// This is the end-to-end face of the determinism contract in
// src/parallel/kernel_executor.hpp: the oracle suite proves it per
// kernel; this suite proves the composition through all six solvers on
// the fig-2 Poisson fixture (single and multi RHS) and the complex
// Maxwell fixture. Cutoffs are forced to 1 so every kernel dispatch takes
// the executor path even at these small test sizes.
#include <gtest/gtest.h>

#include <complex>
#include <thread>
#include <vector>

#include "core/block_cg.hpp"
#include "core/cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "parallel/kernel_executor.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;

constexpr KernelCutoffs kForceParallel{1, 1, 1};

std::vector<index_t> lane_counts() {
  std::vector<index_t> lanes{1, 2, 7};
  const index_t hw = index_t(std::thread::hardware_concurrency());
  if (hw > 0 && hw != 1 && hw != 2 && hw != 7) lanes.push_back(hw);
  return lanes;
}

// One solver run at a given lane count: the stats and the flattened
// solution (one or more solves concatenated).
template <class T>
struct Outcome {
  std::vector<SolveStats> stats;
  std::vector<T> x;
};

template <class T>
void expect_same_outcome(const Outcome<T>& got, const Outcome<T>& ref, index_t lanes,
                         const char* what) {
  ASSERT_EQ(got.stats.size(), ref.stats.size()) << what;
  for (size_t s = 0; s < ref.stats.size(); ++s) {
    const SolveStats& a = got.stats[s];
    const SolveStats& b = ref.stats[s];
    EXPECT_EQ(a.converged, b.converged) << what << " lanes=" << lanes;
    EXPECT_EQ(a.iterations, b.iterations) << what << " lanes=" << lanes;
    EXPECT_EQ(a.cycles, b.cycles) << what << " lanes=" << lanes;
    EXPECT_EQ(a.reductions, b.reductions) << what << " lanes=" << lanes;
    EXPECT_EQ(a.operator_applies, b.operator_applies) << what << " lanes=" << lanes;
    EXPECT_EQ(a.per_rhs_iterations, b.per_rhs_iterations) << what << " lanes=" << lanes;
    ASSERT_EQ(a.history.size(), b.history.size()) << what << " lanes=" << lanes;
    for (size_t c = 0; c < b.history.size(); ++c)
      EXPECT_EQ(a.history[c], b.history[c])
          << what << " lanes=" << lanes << " rhs=" << c << " (residual history diverged)";
  }
  ASSERT_EQ(got.x.size(), ref.x.size()) << what;
  for (size_t i = 0; i < ref.x.size(); ++i)
    EXPECT_EQ(got.x[i], ref.x[i]) << what << " lanes=" << lanes << " x[" << i << "]";
}

// Run `run` once per lane count and demand bitwise-identical outcomes.
// The 1-lane executor is the reference: ISSUE semantics "1 vs N threads".
template <class T, class Run>
void check_lane_invariance(Run run, const char* what) {
  Outcome<T> ref;
  bool have_ref = false;
  for (index_t lanes : lane_counts()) {
    KernelExecutor ex(lanes, kForceParallel);
    Outcome<T> got = run(ex);
    for (const SolveStats& st : got.stats)
      EXPECT_TRUE(st.converged) << what << " lanes=" << lanes;
    if (!have_ref) {
      ref = std::move(got);
      have_ref = true;
      continue;
    }
    expect_same_outcome<T>(got, ref, lanes, what);
  }
}

// Multi-RHS block: the Poisson RHS in column 0 plus deterministic
// perturbed copies (stand-in for the paper's fig-6 many-RHS sequence).
DenseMatrix<double> poisson_rhs_block(index_t nx, index_t ny, index_t p) {
  const auto base = poisson2d_rhs(nx, ny, 0.1);
  const index_t n = index_t(base.size());
  DenseMatrix<double> b(n, p);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i)
      b(i, c) = base[size_t(i)] + 0.05 * double(c) * std::sin(double(i + 1) * double(c + 1));
  return b;
}

SolverOptions base_opts() {
  SolverOptions opts;
  opts.restart = 50;
  opts.tol = 1e-9;
  return opts;
}

TEST(SolverThreads, CgPoisson) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 1);
  check_lane_invariance<double>(
      [&](const KernelExecutor& ex) {
        SolverOptions opts = base_opts();
        opts.exec = &ex;
        CsrOperator<double> op(a, nullptr, &ex);
        Outcome<double> out;
        DenseMatrix<double> x(a.rows(), 1);
        out.stats.push_back(cg<double>(op, nullptr, b.view(), x.view(), opts));
        out.x.assign(x.data(), x.data() + a.rows());
        return out;
      },
      "cg");
}

TEST(SolverThreads, BlockCgPoissonMultiRhs) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 4);
  check_lane_invariance<double>(
      [&](const KernelExecutor& ex) {
        SolverOptions opts = base_opts();
        opts.exec = &ex;
        CsrOperator<double> op(a, nullptr, &ex);
        Outcome<double> out;
        DenseMatrix<double> x(a.rows(), 4);
        out.stats.push_back(block_cg<double>(op, nullptr, b.view(), x.view(), opts));
        out.x.assign(x.data(), x.data() + a.rows() * 4);
        return out;
      },
      "block_cg");
}

TEST(SolverThreads, BlockGmresPoissonMultiRhs) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 4);
  for (Ortho ortho : {Ortho::Cgs, Ortho::Cgs2, Ortho::Mgs}) {
    check_lane_invariance<double>(
        [&](const KernelExecutor& ex) {
          SolverOptions opts = base_opts();
          opts.ortho = ortho;
          opts.exec = &ex;
          CsrOperator<double> op(a, nullptr, &ex);
          Outcome<double> out;
          DenseMatrix<double> x(a.rows(), 4);
          out.stats.push_back(block_gmres<double>(op, nullptr, b.view(), x.view(), opts));
          out.x.assign(x.data(), x.data() + a.rows() * 4);
          return out;
        },
        "block_gmres");
  }
}

TEST(SolverThreads, PseudoBlockGmresPoissonMultiRhs) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 3);
  check_lane_invariance<double>(
      [&](const KernelExecutor& ex) {
        SolverOptions opts = base_opts();
        opts.exec = &ex;
        CsrOperator<double> op(a, nullptr, &ex);
        Outcome<double> out;
        DenseMatrix<double> x(a.rows(), 3);
        out.stats.push_back(pseudo_block_gmres<double>(op, nullptr, b.view(), x.view(), opts));
        out.x.assign(x.data(), x.data() + a.rows() * 3);
        return out;
      },
      "pseudo_block_gmres");
}

TEST(SolverThreads, LgmresPoisson) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson2d_rhs(12, 12, 0.1);
  check_lane_invariance<double>(
      [&](const KernelExecutor& ex) {
        SolverOptions opts = base_opts();
        opts.restart = 30;
        opts.recycle = 2;  // augmentation vectors
        opts.exec = &ex;
        CsrOperator<double> op(a, nullptr, &ex);
        Outcome<double> out;
        std::vector<double> x(b.size(), 0.0);
        out.stats.push_back(lgmres<double>(op, nullptr, b, x, opts));
        out.x = std::move(x);
        return out;
      },
      "lgmres");
}

// GCRO-DR over a two-solve sequence: the second solve consumes the
// recycled space built by the first, so the deflation refresh (harmonic
// Ritz eigenproblem, C/U rebuild) is also covered by the invariance check.
TEST(SolverThreads, GcroDrPoissonSequence) {
  const auto a = poisson2d(12, 12);
  const auto b1 = poisson_rhs_block(12, 12, 2);
  const auto b2 = poisson_rhs_block(12, 12, 2);
  check_lane_invariance<double>(
      [&](const KernelExecutor& ex) {
        SolverOptions opts = base_opts();
        opts.restart = 20;
        opts.recycle = 2;
        opts.exec = &ex;
        CsrOperator<double> op(a, nullptr, &ex);
        GcroDr<double> solver(opts);
        Outcome<double> out;
        DenseMatrix<double> x1(a.rows(), 2), x2(a.rows(), 2);
        out.stats.push_back(solver.solve(op, nullptr, b1.view(), x1.view()));
        out.stats.push_back(solver.solve(op, nullptr, b2.view(), x2.view(), nullptr, false));
        out.x.assign(x1.data(), x1.data() + a.rows() * 2);
        out.x.insert(out.x.end(), x2.data(), x2.data() + a.rows() * 2);
        return out;
      },
      "gcrodr");
}

TEST(SolverThreads, PseudoGcroDrPoissonSequence) {
  const auto a = poisson2d(12, 12);
  const auto b1 = poisson_rhs_block(12, 12, 3);
  const auto b2 = poisson_rhs_block(12, 12, 3);
  check_lane_invariance<double>(
      [&](const KernelExecutor& ex) {
        SolverOptions opts = base_opts();
        opts.restart = 20;
        opts.recycle = 2;
        opts.exec = &ex;
        CsrOperator<double> op(a, nullptr, &ex);
        PseudoGcroDr<double> solver(opts);
        Outcome<double> out;
        DenseMatrix<double> x1(a.rows(), 3), x2(a.rows(), 3);
        out.stats.push_back(solver.solve(op, nullptr, b1.view(), x1.view()));
        out.stats.push_back(solver.solve(op, nullptr, b2.view(), x2.view(), nullptr, false));
        out.x.assign(x1.data(), x1.data() + a.rows() * 3);
        out.x.insert(out.x.end(), x2.data(), x2.data() + a.rows() * 3);
        return out;
      },
      "pseudo_gcrodr");
}

TEST(SolverThreads, ComplexBlockGmresMaxwell) {
  MaxwellConfig cfg;
  cfg.n = 5;
  cfg.wavelengths = 0.8;
  cfg.loss = 0.3;
  const auto prob = maxwell3d(cfg);
  const index_t p = 2;
  DenseMatrix<cplx> b(prob.nfree, p);
  for (index_t c = 0; c < p; ++c) {
    const auto col = antenna_rhs(prob, c, 4);
    std::copy(col.begin(), col.end(), b.col(c));
  }
  check_lane_invariance<cplx>(
      [&](const KernelExecutor& ex) {
        SolverOptions opts;
        opts.restart = 150;
        opts.tol = 1e-7;
        opts.exec = &ex;
        CsrOperator<cplx> op(prob.matrix, nullptr, &ex);
        Outcome<cplx> out;
        DenseMatrix<cplx> x(prob.nfree, p);
        out.stats.push_back(block_gmres<cplx>(op, nullptr, b.view(), x.view(), opts));
        out.x.assign(x.data(), x.data() + prob.nfree * p);
        return out;
      },
      "complex block_gmres");
}

// Null executor and 1-lane executor with huge cutoffs must reproduce the
// legacy serial solver bit for bit: below the cutoff there is no chunked
// reduction anywhere, so opting in to the executor is numerically free
// until a kernel actually crosses its threshold.
TEST(SolverThreads, BelowCutoffMatchesLegacyBitwise) {
  const auto a = poisson2d(10, 10);
  const auto b = poisson_rhs_block(10, 10, 2);
  SolverOptions opts = base_opts();
  CsrOperator<double> op(a);
  DenseMatrix<double> xref(a.rows(), 2);
  const auto sref = block_gmres<double>(op, nullptr, b.view(), xref.view(), opts);

  const KernelCutoffs huge{index_t(1) << 40, index_t(1) << 40, index_t(1) << 40};
  for (index_t lanes : lane_counts()) {
    KernelExecutor ex(lanes, huge);
    SolverOptions o2 = base_opts();
    o2.exec = &ex;
    CsrOperator<double> op2(a, nullptr, &ex);
    DenseMatrix<double> x(a.rows(), 2);
    const auto st = block_gmres<double>(op2, nullptr, b.view(), x.view(), o2);
    EXPECT_EQ(st.iterations, sref.iterations);
    ASSERT_EQ(st.history.size(), sref.history.size());
    for (size_t c = 0; c < sref.history.size(); ++c) EXPECT_EQ(st.history[c], sref.history[c]);
    for (index_t j = 0; j < 2; ++j)
      for (index_t i = 0; i < a.rows(); ++i) EXPECT_EQ(x(i, j), xref(i, j));
  }
}

}  // namespace
}  // namespace bkr
