// Tests: mixed-precision pilot (DESIGN.md §14) — the fp32-storage mirror,
// MixedPrecisionOperator, the residual-replacement discipline, and the
// regression pins for the findings bkr-fpflow surfaced.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/contracts.hpp"
#include "core/cg.hpp"
#include "core/gmres.hpp"
#include "core/operator.hpp"
#include "fem/poisson2d.hpp"
#include "obs/trace.hpp"
#include "precond/amg.hpp"
#include "sparse/mixed.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

// This suite is the tolerance-based oracle for the narrowing components
// of the pilot (bkr-fpflow rule oracle-mismatch): every solver-reachable
// BKR_ALLOW_NARROWING / BKR_PRECISION_BOUNDARY component must be named
// here.
BKR_TOLERANCE_ORACLE(MixedPrecisionOperator);
BKR_TOLERANCE_ORACLE(MixedCsr);

using cd = std::complex<double>;

TEST(MixedPrecision, NarrowWidenRoundtrip) {
  // Values exactly representable in fp32 survive the round trip bitwise.
  EXPECT_EQ(precision_convert<double>::widen(precision_convert<double>::narrow(1.5)), 1.5);
  EXPECT_EQ(precision_convert<double>::widen(precision_convert<double>::narrow(-0.25)), -0.25);
  const cd z = precision_convert<cd>::widen(precision_convert<cd>::narrow(cd(2.5, -0.125)));
  EXPECT_EQ(z, cd(2.5, -0.125));
  // A value that is not loses at most an fp32 ulp, relative.
  const double v = 1.0 / 3.0;
  const double w = precision_convert<double>::widen(precision_convert<double>::narrow(v));
  EXPECT_LT(std::abs(w - v) / v, 1e-7);
}

TEST(MixedPrecision, MirrorSpmvMatchesFp64WithinFp32Eps) {
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  const MixedCsr<double> mirror(a);
  EXPECT_EQ(mirror.nnz(), a.nnz());
  const auto x = testing::random_matrix<double>(n, 1, 71);
  std::vector<double> y64(size_t(n), 0.0), y32(size_t(n), 0.0);
  a.spmv(x.view().col(0), y64.data());
  mirror.spmv(x.view().col(0), y32.data());
  double num = 0, den = 0;
  for (index_t i = 0; i < n; ++i) {
    num += (y64[size_t(i)] - y32[size_t(i)]) * (y64[size_t(i)] - y32[size_t(i)]);
    den += y64[size_t(i)] * y64[size_t(i)];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-6);
}

TEST(MixedPrecision, MirrorSpmmMatchesColumnwiseSpmv) {
  // The fused block sweep performs the same per-column accumulation order
  // as repeated spmv, so the two paths are bitwise identical.
  const auto a = poisson2d(11, 13);
  const index_t n = a.rows(), p = 4;
  const MixedCsr<double> mirror(a);
  const auto x = testing::random_matrix<double>(n, p, 72);
  DenseMatrix<double> y_block(n, p), y_cols(n, p);
  mirror.spmm(x.view(), y_block.view());
  for (index_t c = 0; c < p; ++c) mirror.spmv(x.view().col(c), y_cols.col(c));
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) EXPECT_EQ(y_block(i, c), y_cols(i, c));
}

TEST(MixedPrecision, ComplexMirrorAccuracy) {
  const index_t n = 50;
  CooBuilder<cd> coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, cd(4.0, 0.5));
    if (i > 0) coo.add(i, i - 1, cd(-1.0, 0.25));
    if (i + 1 < n) coo.add(i, i + 1, cd(-1.0, -0.25));
  }
  const auto a = coo.build();
  const MixedCsr<cd> mirror(a);
  const auto x = testing::random_matrix<cd>(n, 1, 73);
  std::vector<cd> y64(size_t(n), cd(0)), y32(size_t(n), cd(0));
  a.spmv(x.view().col(0), y64.data());
  mirror.spmv(x.view().col(0), y32.data());
  double num = 0, den = 0;
  for (index_t i = 0; i < n; ++i) {
    num += std::norm(y64[size_t(i)] - y32[size_t(i)]);
    den += std::norm(y64[size_t(i)]);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-6);
}

TEST(MixedPrecision, FullApplyIsBitwiseFp64) {
  const auto a = poisson2d(9, 9);
  const index_t n = a.rows();
  MixedPrecisionOperator<double> op(a);
  const auto x = testing::random_matrix<double>(n, 2, 74);
  DenseMatrix<double> y_full(n, 2), y_ref(n, 2);
  op.apply_full(x.view(), y_full.view());
  a.spmm(x.view(), y_ref.view());
  for (index_t c = 0; c < 2; ++c)
    for (index_t i = 0; i < n; ++i) EXPECT_EQ(y_full(i, c), y_ref(i, c));
}

// The acceptance test of the pilot: CG whose every inner operator apply
// streams fp32 values converges to an fp64 tolerance, because the
// residual-replacement discipline re-anchors (and verifies) the recursion
// against the true fp64 residual. 1e-10 is three orders below what the
// fp32 recursion alone could certify.
TEST(MixedPrecision, CgWithFp32InnerConvergesToFp64Tolerance) {
  const auto a = poisson2d(24, 24);
  const index_t n = a.rows();
  MixedPrecisionOperator<double> op(a);
  const auto b = poisson2d_rhs(24, 24, 0.1);
  std::vector<double> x(size_t(n), 0.0);
  SolverOptions opts;
  opts.tol = 1e-10;
  opts.max_iterations = 5000;
  opts.mixed_precision = true;
  opts.replacement_interval = 25;
  const auto st = cg<double>(op, nullptr, b, x, opts);
  ASSERT_TRUE(st.converged);
  EXPECT_EQ(st.status, SolveStatus::Converged);
  // Measured against the fp64 matrix, not the mirror.
  EXPECT_LE(testing::relative_residual(a, x, b), 1e-9);
}

TEST(MixedPrecision, ResidualReplacementEmitsTraceEvent) {
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  MixedPrecisionOperator<double> op(a);
  const auto b = poisson2d_rhs(16, 16, 0.1);
  std::vector<double> x(size_t(n), 0.0);
  obs::SolverTrace trace;
  SolverOptions opts;
  opts.tol = 1e-8;
  opts.max_iterations = 2000;
  opts.mixed_precision = true;
  opts.replacement_interval = 10;
  opts.trace = &trace;
  const auto st = cg<double>(op, nullptr, b, x, opts);
  ASSERT_TRUE(st.converged);
  // Stats and trace stay in lockstep; at least the convergence-time
  // replacement fired.
  EXPECT_GT(st.recoveries, 0);
  EXPECT_EQ(trace.recovery_count(), st.recoveries);
  ASSERT_EQ(trace.solves().size(), 1u);
  bool saw_replacement = false;
  for (const auto& ev : trace.solves()[0].recoveries)
    if (ev.site == "mixed-precision" && ev.action == "residual-replacement")
      saw_replacement = true;
  EXPECT_TRUE(saw_replacement);
}

TEST(MixedPrecision, OffByDefaultLeavesSolveClean) {
  const auto a = poisson2d(14, 14);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(14, 14, 0.1);
  std::vector<double> x(size_t(n), 0.0);
  obs::SolverTrace trace;
  SolverOptions opts;
  opts.tol = 1e-9;
  opts.max_iterations = 2000;
  opts.trace = &trace;
  const auto st = cg<double>(op, nullptr, b, x, opts);
  ASSERT_TRUE(st.converged);
  // No replacement machinery engages on the default path.
  EXPECT_EQ(st.recoveries, 0);
  EXPECT_EQ(trace.recovery_count(), 0);
}

TEST(MixedPrecision, GmresFinalCheckMeasuresFullPrecision) {
  // The shared convergence epilogue (detail::final_residual_check) is
  // forced on by mixed_precision and must measure against the fp64
  // matrix: a GMRES solve through the fp32 mirror still reports a true
  // residual within the epilogue's slack.
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  MixedPrecisionOperator<double> op(a);
  const auto b = poisson2d_rhs(12, 12, 0.1);
  std::vector<double> x(size_t(n), 0.0);
  SolverOptions opts;
  opts.tol = 1e-6;
  opts.max_iterations = 2000;
  opts.mixed_precision = true;
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  ASSERT_TRUE(st.converged);
  EXPECT_LE(testing::relative_residual(a, x, b), 1e-4);
}

// Regression pin for the bkr-fpflow finding in precond/amg.cpp: a zero
// diagonal row used to inject inf into the smoothed prolongator
// (omega / 0); the guard keeps the tentative prolongator on such rows.
TEST(MixedPrecision, AmgZeroDiagonalRowKeepsProlongatorFinite) {
  const index_t n = 40;
  CooBuilder<double> coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    if (i != 17) coo.add(i, i, 4.0);  // row 17: zero diagonal
    if (i > 0) coo.add(i, i - 1, -1.0);
    if (i + 1 < n) coo.add(i, i + 1, -1.0);
  }
  const auto a = coo.build();
  AmgOptions amg_opts;
  amg_opts.coarse_size = 8;
  amg_opts.max_levels = 3;
  amg_opts.smoother = AmgSmoother::Jacobi;
  AmgPreconditioner<double> m(a, amg_opts);
  ASSERT_GT(m.levels(), 1);
  const auto& p = m.prolongator(0);
  for (const double v : p.values()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace bkr
