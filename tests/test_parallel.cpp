// Unit tests: thread pool and communication model, including the
// concurrency stress suite exercised under ThreadSanitizer (tsan preset).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fem/poisson2d.hpp"
#include "parallel/comm_model.hpp"
#include "parallel/thread_pool.hpp"
#include "precond/schwarz.hpp"

namespace bkr {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  const index_t n = 1000;
  std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
  pool.parallel_for(n, [&](index_t i) { hits[size_t(i)].fetch_add(1); });
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(hits[size_t(i)].load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndSingleIteration) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(1, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsANoOpRoundTrip) {
  // Regression: an empty (or negative) range must return without waking
  // any worker or advancing the loop generation. Interleaving many empty
  // loops with a real one proves the start/done protocol is undisturbed —
  // before the fix, a zero-launch round could bump the generation with
  // pending_ == 0 and wake every worker for nothing.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(0, [&](index_t) { count.fetch_add(1); });
    pool.parallel_for(-3, [&](index_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(8, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, SmallRangeBoundarySweepRunsExactlyOnce) {
  // Every n around the workers-per-chunk boundaries (the region where
  // worker ranges come out empty) must run each iteration exactly once.
  for (const index_t threads : {index_t(1), index_t(2), index_t(3), index_t(8)}) {
    ThreadPool pool(threads);
    for (index_t n = 0; n <= 2 * threads + 3; ++n) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
      pool.parallel_for(n, [&](index_t i) { hits[size_t(i)].fetch_add(1); });
      for (index_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[size_t(i)].load(), 1) << "threads=" << threads << " n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, InlineSmallRangeExceptionPropagates) {
  // n == 1 (and any range the calling thread covers alone) runs inline;
  // its exception must reach the submitter directly and leave the pool
  // usable for the next loop.
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1, [](index_t) { throw std::runtime_error("inline iteration failed"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(12, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 12);
}

TEST(ThreadPool, SerialPoolWorks) {
  ThreadPool pool(1);
  index_t sum = 0;  // no atomics needed: serial execution
  pool.parallel_for(100, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round)
    pool.parallel_for(50, [&](index_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 20 * 1225);
}

TEST(ThreadPool, MoreIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(CommModel, CountsEvents) {
  CommModel comm;
  comm.reduction(16);
  comm.reduction(8);
  comm.halo_exchange(1024);
  EXPECT_EQ(comm.reductions(), 2);
  EXPECT_EQ(comm.reduction_bytes(), 24);
  EXPECT_EQ(comm.halo_exchanges(), 1);
  EXPECT_EQ(comm.halo_bytes(), 1024);
  comm.reset();
  EXPECT_EQ(comm.reductions(), 0);
  EXPECT_EQ(comm.halo_bytes(), 0);
}

TEST(CommModel, ModeledTimeScalesWithLogP) {
  CommModel comm;
  for (int i = 0; i < 100; ++i) comm.reduction(8);
  const double t2 = comm.modeled_seconds(2);
  const double t1024 = comm.modeled_seconds(1024);
  EXPECT_GT(t1024, t2);
  // log2(1024) = 10 hops vs 1 hop.
  EXPECT_NEAR(t1024 / t2, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(comm.modeled_seconds(1), 0.0);
}

TEST(CommModel, ReductionsDominateAtScale) {
  // The paper's scalability argument: reductions pay ceil(log2 P) latency
  // hops, halo exchanges only one.
  CommModel reductions_only, halos_only;
  for (int i = 0; i < 50; ++i) reductions_only.reduction(8);
  for (int i = 0; i < 50; ++i) halos_only.halo_exchange(8);
  EXPECT_GT(reductions_only.modeled_seconds(4096), 5.0 * halos_only.modeled_seconds(4096));
}

// --- concurrency stress (run under the tsan preset) -----------------------

TEST(ThreadPoolStress, ConcurrentSubmittersShareOnePool) {
  // Several external threads hammer the same pool; the submission mutex
  // must serialize the loops without losing or duplicating iterations.
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kRounds = 25;
  const index_t n = 64;
  std::atomic<long> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round)
        pool.parallel_for(n, [&](index_t i) { total.fetch_add(i, std::memory_order_relaxed); });
    });
  }
  for (auto& t : submitters) t.join();
  const long per_loop = long(n) * long(n - 1) / 2;
  EXPECT_EQ(total.load(), long(kSubmitters) * long(kRounds) * per_loop);
}

TEST(ThreadPoolStress, NestedParallelForRunsSeriallyInline) {
  ThreadPool pool(4);
  std::atomic<long> inner_total{0};
  pool.parallel_for(8, [&](index_t) {
    // A nested loop must not deadlock on the submission mutex; it runs
    // inline on whichever lane executes this body.
    pool.parallel_for(10, [&](index_t j) {
      inner_total.fetch_add(j, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 45);
}

TEST(ThreadPoolStress, ResizeUnderConcurrentLoad) {
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  std::atomic<long> total{0};
  std::thread submitter([&] {
    while (!stop.load()) {
      pool.parallel_for(32, [&](index_t i) { total.fetch_add(i, std::memory_order_relaxed); });
    }
  });
  for (const index_t target : {index_t(1), index_t(4), index_t(2), index_t(3)}) {
    pool.resize(target);
    EXPECT_EQ(pool.size(), target);
  }
  stop.store(true);
  submitter.join();
  EXPECT_EQ(total.load() % (32 * 31 / 2), 0);
}

TEST(ThreadPoolStress, FirstExceptionPropagatesToSubmitter) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(100, [&](index_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 57) throw std::runtime_error("iteration 57 failed");
    });
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "iteration 57 failed");
  }
  EXPECT_GE(ran.load(), 1);
  // The pool must stay usable after a failed loop.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolStress, ExceptionInSerialNestedLoopPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](index_t i) {
                                   if (i == 0)
                                     pool.parallel_for(
                                         2, [](index_t) { throw std::logic_error("inner"); });
                                 }),
               std::logic_error);
}

TEST(SchwarzStress, ConcurrentAppliesAreRaceFree) {
  // Multiple solver threads sharing one preconditioner: each apply uses
  // its own output block, while the stats counters funnel through the
  // internal mutex.
  const CsrMatrix<double> a = poisson2d(24, 24);
  SchwarzOptions opts;
  opts.subdomains = 4;
  opts.overlap = 1;
  SchwarzPreconditioner<double> m(a, opts);
  const index_t n = a.rows(), p = 2;
  constexpr int kThreads = 4;
  constexpr int kApplies = 8;
  DenseMatrix<double> r(n, p);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) r(i, c) = 1.0 + double(i % 7) + double(c);
  std::vector<DenseMatrix<double>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    results[size_t(t)].resize(n, p);
    threads.emplace_back([&, t] {
      for (int k = 0; k < kApplies; ++k)
        m.apply(r.view(), results[size_t(t)].view());
    });
  }
  for (auto& t : threads) t.join();
  // Deterministic result: every thread computed the same application.
  for (int t = 1; t < kThreads; ++t)
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(results[size_t(t)](i, c), results[0](i, c));
  EXPECT_EQ(m.stats().applications, kThreads * kApplies);
}

}  // namespace
}  // namespace bkr
