// Unit tests: thread pool and communication model.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/comm_model.hpp"
#include "parallel/thread_pool.hpp"

namespace bkr {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  const index_t n = 1000;
  std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
  pool.parallel_for(n, [&](index_t i) { hits[size_t(i)].fetch_add(1); });
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(hits[size_t(i)].load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndSingleIteration) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(1, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SerialPoolWorks) {
  ThreadPool pool(1);
  index_t sum = 0;  // no atomics needed: serial execution
  pool.parallel_for(100, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round)
    pool.parallel_for(50, [&](index_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 20 * 1225);
}

TEST(ThreadPool, MoreIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(CommModel, CountsEvents) {
  CommModel comm;
  comm.reduction(16);
  comm.reduction(8);
  comm.halo_exchange(1024);
  EXPECT_EQ(comm.reductions(), 2);
  EXPECT_EQ(comm.reduction_bytes(), 24);
  EXPECT_EQ(comm.halo_exchanges(), 1);
  EXPECT_EQ(comm.halo_bytes(), 1024);
  comm.reset();
  EXPECT_EQ(comm.reductions(), 0);
  EXPECT_EQ(comm.halo_bytes(), 0);
}

TEST(CommModel, ModeledTimeScalesWithLogP) {
  CommModel comm;
  for (int i = 0; i < 100; ++i) comm.reduction(8);
  const double t2 = comm.modeled_seconds(2);
  const double t1024 = comm.modeled_seconds(1024);
  EXPECT_GT(t1024, t2);
  // log2(1024) = 10 hops vs 1 hop.
  EXPECT_NEAR(t1024 / t2, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(comm.modeled_seconds(1), 0.0);
}

TEST(CommModel, ReductionsDominateAtScale) {
  // The paper's scalability argument: reductions pay ceil(log2 P) latency
  // hops, halo exchanges only one.
  CommModel reductions_only, halos_only;
  for (int i = 0; i < 50; ++i) reductions_only.reduction(8);
  for (int i = 0; i < 50; ++i) halos_only.halo_exchange(8);
  EXPECT_GT(reductions_only.modeled_seconds(4096), 5.0 * halos_only.modeled_seconds(4096));
}

}  // namespace
}  // namespace bkr
