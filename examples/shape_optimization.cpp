// Shape-optimization-style sequence (paper section IV-C / V-D): solve a
// chain of slowly varying elasticity systems, as an optimizer moving a
// design parameter would, recycling the Krylov subspace across systems.
//
// Each step shrinks and shifts the soft inclusion a little; GCRO-DR
// re-orthonormalizes its recycled space against the *new* operator
// (fig. 1 lines 4-6) and keeps deflating.
#include <cstdio>
#include <vector>

#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/elasticity3d.hpp"
#include "precond/amg.hpp"

int main() {
  using namespace bkr;
  const index_t ne = 10;
  const index_t design_steps = 6;
  std::printf("shape optimization surrogate: 3-D elasticity, ne=%lld, %lld design steps\n",
              static_cast<long long>(ne), static_cast<long long>(design_steps));

  SolverOptions opts;
  opts.restart = 30;
  opts.tol = 1e-8;
  opts.side = PrecondSide::Flexible;
  auto gopts = opts;
  gopts.recycle = 10;
  gopts.strategy = RecycleStrategy::A;
  GcroDr<double> recycler(gopts);

  index_t total_gmres = 0, total_gcro = 0;
  double compliance_prev = 0;
  for (index_t step = 0; step < design_steps; ++step) {
    // The design variable: the inclusion slides toward the clamped face
    // and softens — a smooth path through matrix space.
    ElasticityConfig cfg;
    cfg.ne = ne;
    cfg.inclusion.stiffness_ratio = 10.0 + 5.0 * double(step);
    cfg.inclusion.radius = 0.35;
    cfg.inclusion.x = 0.6 - 0.04 * double(step);
    cfg.inclusion.y = 0.5;
    cfg.inclusion.z = 0.5;
    const auto prob = elasticity3d(cfg);
    const index_t n = prob.nfree;
    AmgOptions amg;
    amg.block_size = 3;
    amg.smoother = AmgSmoother::Cg;  // nonlinear -> flexible solvers
    amg.smoother_iterations = 2;
    AmgPreconditioner<double> m(prob.matrix, amg, prob.rigid_body_modes.view());
    CsrOperator<double> op(prob.matrix);

    std::vector<double> xg(prob.rhs.size(), 0.0), xc(prob.rhs.size(), 0.0);
    const auto sg = block_gmres<double>(op, &m, MatrixView<const double>(prob.rhs.data(), n, 1, n),
                                        MatrixView<double>(xg.data(), n, 1, n), opts);
    const auto sc = recycler.solve(op, &m, MatrixView<const double>(prob.rhs.data(), n, 1, n),
                                   MatrixView<double>(xc.data(), n, 1, n), nullptr,
                                   /*new_matrix=*/true);
    total_gmres += sg.iterations;
    total_gcro += sc.iterations;
    // The objective an optimizer would track: compliance f^T u.
    double compliance = 0;
    for (index_t i = 0; i < n; ++i) compliance += prob.rhs[size_t(i)] * xc[size_t(i)];
    std::printf("  step %lld: FGMRES %3lld its | FGCRO-DR %3lld its | compliance %.6e (%+.1e)%s\n",
                static_cast<long long>(step), static_cast<long long>(sg.iterations),
                static_cast<long long>(sc.iterations), compliance,
                step == 0 ? 0.0 : compliance - compliance_prev,
                (sg.converged && sc.converged) ? "" : "  NOT CONVERGED");
    compliance_prev = compliance;
  }
  std::printf("\ntotals over the design path: FGMRES %lld | FGCRO-DR %lld iterations\n",
              static_cast<long long>(total_gmres), static_cast<long long>(total_gcro));
  std::printf("(recycling helps most when consecutive systems are close — section V-D)\n");
  return 0;
}
