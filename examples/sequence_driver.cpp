// Sequence driver: the session / recycle-cache front end.
//
// Replays a frequency-sweep-style workload — several operators, each hit
// by the paper's fig. 2 sequence of right-hand sides — through the
// SolverSession + RecycleCache service layer, twice: a cold pass whose
// sessions deposit their recycle spaces into a shared cache, then a warm
// pass whose fresh sessions withdraw them. The point of the exercise is
// the drop in first-solve iterations between the passes (the deflation
// space outlives the session that built it).
//
//   ./example_sequence_driver -grid 48 -method gcrodr -m 30 -k 10
//       (continued:) -cache_file /tmp/spaces.bkrc -assert_improvement
//
// Options (defaults in parentheses):
//   -grid N           operator resolution                       (40)
//   -method           gcrodr | pbgcrodr                         (gcrodr)
//   -m VAL            restart length                            (30)
//   -k VAL            recycle dimension                         (10)
//   -tol EPS          relative residual target                  (1e-8)
//   -nrhs P           right-hand sides per operator             (4)
//   -cache_file FILE  load the cache from FILE if it exists (so even the
//                     first pass warm-starts), save it back after the run
//   -no_cache         run both passes without a cache (sessions still
//                     recycle internally; nothing crosses sessions)
//   -assert_improvement  exit nonzero unless every operator's warm-pass
//                     first solve took strictly fewer iterations than its
//                     cold reference and reported warm_started
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "core/recycle_cache.hpp"
#include "core/session.hpp"
#include "fem/poisson2d.hpp"
#include "precond/jacobi.hpp"

namespace {

using namespace bkr;

struct PassResult {
  index_t first_iterations = 0;
  index_t total_iterations = 0;
  bool warm = false;
  bool converged = true;
};

// Run the fig. 2 sequence (nrhs sources against one operator) through a
// fresh session, optionally backed by `cache`.
PassResult run_session(const CsrMatrix<double>& a, index_t grid, index_t nrhs,
                       SessionMethod method, const SolverOptions& sopts, RecycleCache* cache) {
  SessionConfig cfg;
  cfg.method = method;
  cfg.options = sopts;
  cfg.cache = cache;
  JacobiPreconditioner<double> jacobi(a);
  SolverSession<double> session(a, &jacobi, cfg);
  PassResult r;
  r.warm = session.warm_started();
  const index_t n = a.rows();
  for (index_t s = 0; s < nrhs; ++s) {
    const auto f = poisson2d_rhs(grid, grid, kPoissonNus[size_t(s % 4)]);
    DenseMatrix<double> b(n, 1), x(n, 1);
    std::copy(f.begin(), f.end(), b.col(0));
    const SolveStats st = session.solve(b.view(), x.view());
    if (s == 0) r.first_iterations = st.iterations;
    r.total_iterations += st.iterations;
    r.converged = r.converged && st.converged;
  }
  return r;  // ~SolverSession deposits the final space into the cache
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  if (opts.has("help")) {
    std::printf("see the comment block at the top of examples/sequence_driver.cpp\n");
    return 0;
  }
  const index_t grid = opts.get("grid", index_t(40));
  const index_t nrhs = opts.get("nrhs", index_t(4));
  const std::string method_name = opts.get("method", std::string("gcrodr"));
  const bool no_cache = opts.has("no_cache");
  const bool assert_improvement = opts.has("assert_improvement");
  const std::string cache_file = opts.get("cache_file", std::string(""));

  SessionMethod method;
  if (method_name == "gcrodr") {
    method = SessionMethod::GcroDr;
  } else if (method_name == "pbgcrodr") {
    method = SessionMethod::PseudoGcroDr;
  } else {
    std::printf("unknown -method %s (gcrodr | pbgcrodr)\n", method_name.c_str());
    return 1;
  }

  SolverOptions sopts;
  sopts.restart = opts.get("m", index_t(30));
  sopts.recycle = opts.get("k", index_t(10));
  sopts.tol = opts.get("tol", 1e-8);

  // The sweep: one constant-coefficient operator and two heterogeneous
  // variants, each solved against the fig. 2 source sequence.
  std::vector<CsrMatrix<double>> operators;
  operators.push_back(poisson2d(grid, grid));
  operators.push_back(poisson2d_varcoef(grid, grid, 100.0, 8));
  operators.push_back(poisson2d_varcoef(grid, grid, 50.0, 12));
  const char* names[] = {"poisson", "varcoef-100", "varcoef-50"};

  std::printf("%s sessions (m=%lld, k=%lld, tol=%g, grid=%lld, %lld rhs/operator, cache %s)\n",
              method_name.c_str(), static_cast<long long>(sopts.restart),
              static_cast<long long>(sopts.recycle), sopts.tol, static_cast<long long>(grid),
              static_cast<long long>(nrhs), no_cache ? "off" : "on");

  // Cold reference: sessions with no cache at all.
  std::vector<PassResult> cold;
  for (size_t i = 0; i < operators.size(); ++i)
    cold.push_back(run_session(operators[i], grid, nrhs, method, sopts, nullptr));

  RecycleCache cache;
  RecycleCache* cache_ptr = no_cache ? nullptr : &cache;
  if (cache_ptr != nullptr && !cache_file.empty()) {
    if (cache.load(cache_file)) {
      std::printf("loaded %lld cached spaces from %s\n",
                  static_cast<long long>(cache.counters().entries), cache_file.c_str());
    } else if (std::ifstream(cache_file).good()) {
      // The file exists but failed validation (bad magic/version/checksum
      // or truncation): cold-starting silently would hide snapshot rot.
      std::fprintf(stderr,
                   "warning: cache snapshot %s is corrupt or unreadable; cold-starting\n",
                   cache_file.c_str());
    } else {
      std::fprintf(stderr, "note: cache snapshot %s not found; cold-starting\n",
                   cache_file.c_str());
    }
  }

  // Pass A populates (or reuses) the shared cache; pass B's fresh
  // sessions must then warm-start from it.
  std::vector<PassResult> pass_a, pass_b;
  for (size_t i = 0; i < operators.size(); ++i)
    pass_a.push_back(run_session(operators[i], grid, nrhs, method, sopts, cache_ptr));
  for (size_t i = 0; i < operators.size(); ++i)
    pass_b.push_back(run_session(operators[i], grid, nrhs, method, sopts, cache_ptr));

  std::printf("  %-12s %14s %14s %14s\n", "operator", "cold first-it", "passA first-it",
              "passB first-it");
  bool all_converged = true;
  bool improved = true;
  std::vector<size_t> regressed;
  for (size_t i = 0; i < operators.size(); ++i) {
    std::printf("  %-12s %14lld %13lld%s %13lld%s\n", names[i],
                static_cast<long long>(cold[i].first_iterations),
                static_cast<long long>(pass_a[i].first_iterations), pass_a[i].warm ? "w" : " ",
                static_cast<long long>(pass_b[i].first_iterations), pass_b[i].warm ? "w" : " ");
    all_converged = all_converged && cold[i].converged && pass_a[i].converged &&
                    pass_b[i].converged;
    const bool op_improved =
        pass_b[i].warm && pass_b[i].first_iterations < cold[i].first_iterations;
    if (!op_improved) regressed.push_back(i);
    improved = improved && op_improved;
  }
  if (cache_ptr != nullptr) {
    const auto c = cache.counters();
    std::printf("  cache: %lld hits, %lld misses, %lld evictions, %lld entries, %lld bytes\n",
                static_cast<long long>(c.hits), static_cast<long long>(c.misses),
                static_cast<long long>(c.evictions), static_cast<long long>(c.entries),
                static_cast<long long>(c.bytes));
    if (!cache_file.empty()) {
      if (cache.save(cache_file))
        std::printf("  cache saved to %s\n", cache_file.c_str());
      else
        std::printf("  FAILED to save cache to %s\n", cache_file.c_str());
    }
  }
  if (!all_converged) {
    std::printf("NOT CONVERGED\n");
    return 3;
  }
  if (assert_improvement && cache_ptr != nullptr && !improved) {
    for (const size_t i : regressed)
      std::fprintf(stderr,
                   "ASSERT FAILED: operator %s warm first solve %s (warm %lld iterations vs "
                   "cold %lld)\n",
                   names[i],
                   pass_b[i].warm ? "did not improve on the cold reference"
                                  : "was not warm-started from the cache",
                   static_cast<long long>(pass_b[i].first_iterations),
                   static_cast<long long>(cold[i].first_iterations));
    return 2;
  }
  return 0;
}
