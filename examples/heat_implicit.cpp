// Implicit heat equation (paper section III-B): a time-dependent PDE where
// the operator is fixed and only the right-hand side changes each step —
// the canonical `same_system` recycling scenario (eq. 4 of the paper).
//
//   du/dt - Laplace(u) = f,  backward Euler:  (I + dt*A) u_{k+1} = u_k + dt*f
//
// The example integrates 40 time steps twice — once with restarted GMRES,
// once with GCRO-DR + same_system — and reports the total iteration and
// synchronization counts.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/poisson2d.hpp"

namespace {

using namespace bkr;

// (h^2 I + dt * A_poisson): backward Euler matrix in the h^2-scaled world.
CsrMatrix<double> heat_matrix(index_t grid, double dt) {
  auto a = poisson2d(grid, grid);
  const double h = 1.0 / double(grid + 1);
  auto& values = a.values();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l) {
      values[size_t(l)] *= dt;
      if (a.colind()[size_t(l)] == i) values[size_t(l)] += h * h;
    }
  return a;
}

}  // namespace

int main() {
  using namespace bkr;
  const index_t grid = 80;
  const double dt = 5e-2;
  const index_t steps = 40;
  const auto a = heat_matrix(grid, dt);
  const index_t n = a.rows();
  const double h = 1.0 / double(grid + 1);
  CsrOperator<double> op(a);
  std::printf("implicit heat equation: %lld unknowns, dt=%g, %lld steps\n",
              static_cast<long long>(n), dt, static_cast<long long>(steps));

  // Time-periodic source moving through the domain.
  auto source = [&](index_t step) {
    std::vector<double> f(static_cast<size_t>(n));
    const double cx = 0.5 + 0.3 * std::cos(0.3 * double(step));
    const double cy = 0.5 + 0.3 * std::sin(0.3 * double(step));
    for (index_t j = 0; j < grid; ++j)
      for (index_t i = 0; i < grid; ++i) {
        const double x = double(i + 1) * h, y = double(j + 1) * h;
        const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
        f[size_t(i + j * grid)] = std::exp(-d2 / 0.01);
      }
    return f;
  };

  auto march = [&](auto&& solve_fn, const char* name) {
    std::vector<double> u(static_cast<size_t>(n), 0.0);
    index_t total_iterations = 0;
    std::int64_t total_reductions = 0;
    for (index_t step = 0; step < steps; ++step) {
      const auto f = source(step);
      std::vector<double> rhs(static_cast<size_t>(n));
      for (index_t i = 0; i < n; ++i) rhs[size_t(i)] = h * h * (u[size_t(i)] + dt * f[size_t(i)]);
      std::vector<double> unew = u;  // warm start from the previous state
      const SolveStats st = solve_fn(rhs, unew);
      if (!st.converged) std::printf("  WARNING: step %lld not converged\n",
                                     static_cast<long long>(step));
      total_iterations += st.iterations;
      total_reductions += st.reductions;
      u = std::move(unew);
    }
    std::printf("  %-22s total iterations %6lld, global reductions %8lld\n", name,
                static_cast<long long>(total_iterations),
                static_cast<long long>(total_reductions));
    return u;
  };

  SolverOptions opts;
  opts.restart = 25;
  opts.tol = 1e-9;
  const auto u_gmres = march(
      [&](const std::vector<double>& b, std::vector<double>& x) {
        return gmres<double>(op, nullptr, b, x, opts);
      },
      "GMRES(25)");

  // Two recycling policies: `same_system` freezes the deflation space
  // after the first solve (minimum communication, fig. 1 lines 31-38
  // skipped), while refreshing it at every restart minimizes iterations —
  // here the refresh more than pays for its eigenproblem traffic.
  auto gopts = opts;
  gopts.recycle = 8;
  gopts.same_system = true;
  GcroDr<double> frozen(gopts);
  march(
      [&](const std::vector<double>& b, std::vector<double>& x) {
        return frozen.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                            MatrixView<double>(x.data(), n, 1, n));
      },
      "GCRO-DR(25,8)+same");
  gopts.same_system = false;
  GcroDr<double> refreshing(gopts);
  const auto u_gcro = march(
      [&](const std::vector<double>& b, std::vector<double>& x) {
        return refreshing.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                MatrixView<double>(x.data(), n, 1, n));
      },
      "GCRO-DR(25,8)+refresh");

  // Both integrations must produce the same trajectory.
  double diff = 0, norm = 0;
  for (index_t i = 0; i < n; ++i) {
    diff += (u_gmres[size_t(i)] - u_gcro[size_t(i)]) * (u_gmres[size_t(i)] - u_gcro[size_t(i)]);
    norm += u_gmres[size_t(i)] * u_gmres[size_t(i)];
  }
  std::printf("  trajectory agreement: ||u_gmres - u_gcrodr|| / ||u|| = %.2e\n",
              std::sqrt(diff / norm));
  return 0;
}
