// Quickstart: build a sparse system, solve it with GMRES, then solve a
// sequence of right-hand sides with GCRO-DR and watch recycling pay off.
//
//   $ ./example_quickstart
//
// This is the 5-minute tour of the public API:
//   CsrMatrix / CooBuilder     — assemble sparse operators
//   CsrOperator                — operator handle for the solvers
//   SolverOptions / SolveStats — configuration and results
//   gmres / GcroDr             — the iterative methods
#include <cstdio>
#include <vector>

#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/poisson2d.hpp"

int main() {
  using namespace bkr;

  // A 2-D Poisson matrix (10,000 unknowns) and the paper's four Gaussian
  // sources as successive right-hand sides.
  const index_t grid = 100;
  const CsrMatrix<double> a = poisson2d(grid, grid);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  std::printf("system: %lld unknowns, %lld nonzeros\n\n", static_cast<long long>(n),
              static_cast<long long>(a.nnz()));

  // --- one solve with restarted GMRES -----------------------------------
  SolverOptions opts;
  opts.restart = 30;   // GMRES(30)
  opts.tol = 1e-8;     // relative residual target
  {
    const std::vector<double> b = poisson2d_rhs(grid, grid, 0.1);
    std::vector<double> x(b.size(), 0.0);
    const SolveStats st = gmres<double>(op, /*preconditioner=*/nullptr, b, x, opts);
    std::printf("GMRES(30):        %4lld iterations, converged=%d, %.1f ms\n",
                static_cast<long long>(st.iterations), int(st.converged), 1e3 * st.seconds);
  }

  // --- a sequence of RHS with GCRO-DR recycling --------------------------
  // The matrix never changes, so `same_system` skips the recycled-space
  // maintenance entirely (paper section III-B).
  auto gopts = opts;
  gopts.recycle = 10;       // keep a 10-dimensional deflation space
  gopts.same_system = true;
  GcroDr<double> solver(gopts);
  std::printf("\nGCRO-DR(30,10) over the paper's four-RHS sequence:\n");
  for (const double nu : kPoissonNus) {
    const std::vector<double> b = poisson2d_rhs(grid, grid, nu);
    std::vector<double> x(b.size(), 0.0);
    const SolveStats st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                       MatrixView<double>(x.data(), n, 1, n));
    std::printf("  nu = %8g: %4lld iterations, converged=%d, %.1f ms%s\n", nu,
                static_cast<long long>(st.iterations), int(st.converged), 1e3 * st.seconds,
                solver.has_recycled_space() ? "  (recycled space active)" : "");
  }
  std::printf("\nLater solves reuse the deflation subspace built during the first one —\n"
              "that is the paper's central mechanism.\n");
  return 0;
}
