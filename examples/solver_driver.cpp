// Command-line driver: the artifact-style front end to the library.
//
// Mirrors the paper's artifact workflow (appendix D/E) — pick a problem,
// a preconditioner and a Krylov method on the command line, get the
// iteration/time table:
//
//   ./example_solver_driver -problem poisson -grid 64
//       (continued:)
//       -krylov_method gcrodr -gmres_restart 30 -recycle 10
//       -recycle_same_system -tol 1e-8 -pc jacobi
//
// Options (defaults in parentheses):
//   -problem  poisson | varcoef | elasticity | maxwell | mtx  (poisson)
//   -matrix FILE     Matrix Market file (with -problem mtx; random RHS)
//   -grid N          problem resolution                  (40)
//   -nrhs P          RHS count / sequence length         (4)
//   -krylov_method   gmres | bgmres | pbgmres | gcrodr | bgcrodr |
//                    pbgcrodr | lgmres | cg              (gmres)
//   -gmres_restart m (30)    -recycle k (10)    -tol eps (1e-8)
//   -variant         right | left | flexible             (right)
//   -recycle_strategy A | B                              (B)
//   -recycle_same_system     treat the sequence as one matrix
//   -pc              none | jacobi | amg | oras | asm    (none)
//   -subdomains N (8)   -overlap d (2)   -impedance beta (0.5)
//   -trace FILE      write a per-phase/per-iteration telemetry trace
//                    (JSON; FILE ending in .csv selects CSV) and print
//                    the phase breakdown after the sequence
#include <complex>
#include <cstdio>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/timer.hpp"
#include "core/cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "fem/elasticity3d.hpp"
#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "obs/trace.hpp"
#include "precond/amg.hpp"
#include "precond/jacobi.hpp"
#include "precond/schwarz.hpp"
#include "common/rng.hpp"
#include "sparse/matrix_market.hpp"

namespace {

using namespace bkr;
using cd = std::complex<double>;

SolverOptions solver_options(const Options& opts) {
  SolverOptions o;
  o.restart = opts.get("gmres_restart", index_t(30));
  o.recycle = opts.get("recycle", index_t(10));
  o.tol = opts.get("tol", 1e-8);
  o.max_iterations = opts.get("max_it", index_t(10000));
  const std::string variant = opts.get("variant", std::string("right"));
  o.side = variant == "left"       ? PrecondSide::Left
           : variant == "flexible" ? PrecondSide::Flexible
                                   : PrecondSide::Right;
  o.strategy = opts.get("recycle_strategy", std::string("B")) == "A" ? RecycleStrategy::A
                                                                     : RecycleStrategy::B;
  o.same_system = opts.has("recycle_same_system");
  return o;
}

template <class T>
std::unique_ptr<Preconditioner<T>> make_preconditioner(const Options& opts, const CsrMatrix<T>& a,
                                                       MatrixView<const T> near_nullspace) {
  const std::string pc = opts.get("pc", std::string("none"));
  if (pc == "jacobi") return std::make_unique<JacobiPreconditioner<T>>(a);
  if (pc == "amg") {
    AmgOptions o;
    o.threshold = opts.get("amg_threshold", 0.0);
    o.block_size = near_nullspace.cols() >= 3 ? 3 : 1;
    o.smoother = AmgSmoother::Chebyshev;
    return std::make_unique<AmgPreconditioner<T>>(a, o, near_nullspace);
  }
  if (pc == "oras" || pc == "asm") {
    SchwarzOptions o;
    o.subdomains = opts.get("subdomains", index_t(8));
    o.overlap = opts.get("overlap", index_t(2));
    o.kind = pc == "oras" ? SchwarzKind::Oras : SchwarzKind::Asm;
    o.impedance = opts.get("impedance", 0.5);
    return std::make_unique<SchwarzPreconditioner<T>>(a, o);
  }
  return nullptr;
}

// Solve the sequence with the requested method; `p` columns per solve.
template <class T>
void run_sequence(const Options& opts, const std::vector<CsrMatrix<T>*>& matrices,
                  const std::vector<DenseMatrix<T>>& rhs, MatrixView<const T> near_nullspace) {
  const std::string method = opts.get("krylov_method", std::string("gmres"));
  SolverOptions sopts = solver_options(opts);
  const std::string trace_path = opts.get("trace", std::string(""));
  obs::SolverTrace trace;
  if (!trace_path.empty()) sopts.trace = &trace;
  std::printf("%s (m=%lld, k=%lld, tol=%g, %zu solves)\n", method.c_str(),
              static_cast<long long>(sopts.restart), static_cast<long long>(sopts.recycle),
              sopts.tol, rhs.size());
  GcroDr<T> gcro(sopts.recycle > 0 ? sopts : SolverOptions{});
  PseudoGcroDr<T> pgcro(sopts.recycle > 0 ? sopts : SolverOptions{});
  index_t total_iterations = 0;
  double total_seconds = 0;
  for (size_t s = 0; s < rhs.size(); ++s) {
    const CsrMatrix<T>& a = *matrices[std::min(s, matrices.size() - 1)];
    auto m = make_preconditioner<T>(opts, a, near_nullspace);
    CsrOperator<T> op(a);
    const index_t n = a.rows();
    const index_t p = rhs[s].cols();
    DenseMatrix<T> x(n, p);
    const bool new_matrix = matrices.size() > 1;
    Timer t;
    SolveStats st;
    if (method == "gmres" || method == "bgmres") {
      st = block_gmres<T>(op, m.get(), rhs[s].view(), x.view(), sopts);
    } else if (method == "pbgmres") {
      st = pseudo_block_gmres<T>(op, m.get(), rhs[s].view(), x.view(), sopts);
    } else if (method == "gcrodr" || method == "bgcrodr") {
      st = gcro.solve(op, m.get(), rhs[s].view(), x.view(), nullptr, new_matrix);
    } else if (method == "pbgcrodr") {
      st = pgcro.solve(op, m.get(), rhs[s].view(), x.view(), nullptr, new_matrix);
    } else if (method == "lgmres") {
      std::vector<T> b(rhs[s].col(0), rhs[s].col(0) + n), xv(static_cast<size_t>(n), T(0));
      st = lgmres<T>(op, m.get(), b, xv, sopts);
    } else if (method == "cg") {
      st = cg<T>(op, m.get(), rhs[s].view(), x.view(), sopts);
    } else {
      std::printf("unknown -krylov_method %s\n", method.c_str());
      return;
    }
    const double secs = t.seconds();
    std::printf("  %zu %8lld %10.6f%s\n", s + 1, static_cast<long long>(st.iterations), secs,
                st.converged ? "" : "  NOT CONVERGED");
    total_iterations += st.iterations;
    total_seconds += secs;
  }
  std::printf("  ------------------------\n    %8lld %10.6f\n",
              static_cast<long long>(total_iterations), total_seconds);
  if (!trace_path.empty()) {
    std::printf("  phase breakdown (%.6f s of %.6f s instrumented):\n",
                trace.total_phase_seconds(), trace.total_solve_seconds());
    for (int ph = 0; ph < obs::kPhaseCount; ++ph) {
      const auto totals = trace.phase_totals(static_cast<obs::Phase>(ph));
      std::printf("    %-20s %10.6f s  x%lld\n", obs::phase_name(static_cast<obs::Phase>(ph)),
                  totals.seconds, static_cast<long long>(totals.count));
    }
    const bool csv = trace_path.size() > 4 && trace_path.rfind(".csv") == trace_path.size() - 4;
    const bool ok = csv ? trace.write_csv(trace_path) : trace.write_json(trace_path);
    if (ok)
      std::printf("  trace written to %s\n", trace_path.c_str());
    else
      std::printf("  FAILED to write trace to %s\n", trace_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  if (opts.has("help")) {
    std::printf("see the comment block at the top of examples/solver_driver.cpp\n");
    return 0;
  }
  const std::string problem = opts.get("problem", std::string("poisson"));
  const index_t grid = opts.get("grid", index_t(40));
  const index_t nrhs = opts.get("nrhs", index_t(4));
  const std::string method = opts.get("krylov_method", std::string("gmres"));
  const bool block = method == "bgmres" || method == "pbgmres" || method == "bgcrodr" ||
                     method == "pbgcrodr" || method == "cg";

  if (problem == "poisson" || problem == "varcoef") {
    CsrMatrix<double> a = problem == "poisson" ? poisson2d(grid, grid)
                                               : poisson2d_varcoef(grid, grid, 500.0, 24);
    std::printf("problem %s, %lld unknowns\n", problem.c_str(),
                static_cast<long long>(a.rows()));
    std::vector<CsrMatrix<double>*> matrices = {&a};
    std::vector<DenseMatrix<double>> rhs;
    if (block) {
      DenseMatrix<double> b(a.rows(), nrhs);
      for (index_t c = 0; c < nrhs; ++c) {
        const auto f = poisson2d_rhs(grid, grid, kPoissonNus[size_t(c % 4)]);
        std::copy(f.begin(), f.end(), b.col(c));
      }
      rhs.push_back(std::move(b));
    } else {
      for (index_t c = 0; c < nrhs; ++c) {
        DenseMatrix<double> b(a.rows(), 1);
        const auto f = poisson2d_rhs(grid, grid, kPoissonNus[size_t(c % 4)]);
        std::copy(f.begin(), f.end(), b.col(0));
        rhs.push_back(std::move(b));
      }
    }
    run_sequence<double>(opts, matrices, rhs, MatrixView<const double>());
  } else if (problem == "elasticity") {
    std::vector<ElasticityProblem> problems;
    std::vector<CsrMatrix<double>*> matrices;
    std::vector<DenseMatrix<double>> rhs;
    for (index_t s = 0; s < nrhs; ++s) {
      ElasticityConfig cfg;
      cfg.ne = grid;
      cfg.inclusion = kElasticitySequence[size_t(s % 4)];
      problems.push_back(elasticity3d(cfg));
    }
    for (auto& p : problems) {
      matrices.push_back(&p.matrix);
      DenseMatrix<double> b(p.nfree, 1);
      std::copy(p.rhs.begin(), p.rhs.end(), b.col(0));
      rhs.push_back(std::move(b));
    }
    std::printf("problem elasticity, ne=%lld (%lld dofs), %lld varying systems\n",
                static_cast<long long>(grid), static_cast<long long>(problems[0].nfree),
                static_cast<long long>(nrhs));
    run_sequence<double>(opts, matrices, rhs, problems[0].rigid_body_modes.view());
  } else if (problem == "maxwell") {
    MaxwellConfig cfg;
    cfg.n = grid;
    cfg.wavelengths = opts.get("wavelengths", 1.6);
    cfg.loss = opts.get("loss", 0.15);
    const auto prob = maxwell3d(cfg);
    std::printf("problem maxwell, %lld complex unknowns\n", static_cast<long long>(prob.nfree));
    // The matrix object must outlive run_sequence; keep a stable copy.
    CsrMatrix<cd> a = prob.matrix;
    std::vector<CsrMatrix<cd>*> matrices = {&a};
    std::vector<DenseMatrix<cd>> rhs;
    if (block) {
      DenseMatrix<cd> b(prob.nfree, nrhs);
      for (index_t c = 0; c < nrhs; ++c) {
        const auto f = antenna_rhs(prob, c, std::max<index_t>(nrhs, 8));
        std::copy(f.begin(), f.end(), b.col(c));
      }
      rhs.push_back(std::move(b));
    } else {
      for (index_t c = 0; c < nrhs; ++c) {
        DenseMatrix<cd> b(prob.nfree, 1);
        const auto f = antenna_rhs(prob, c, std::max<index_t>(nrhs, 8));
        std::copy(f.begin(), f.end(), b.col(0));
        rhs.push_back(std::move(b));
      }
    }
    run_sequence<cd>(opts, matrices, rhs, MatrixView<const cd>());
  } else if (problem == "mtx") {
    const std::string path = opts.get("matrix", std::string(""));
    if (path.empty()) {
      std::printf("-problem mtx requires -matrix FILE\n");
      return 1;
    }
    CsrMatrix<double> a = read_matrix_market<double>(path);
    std::printf("problem mtx (%s), %lld unknowns\n", path.c_str(),
                static_cast<long long>(a.rows()));
    std::vector<CsrMatrix<double>*> matrices = {&a};
    std::vector<DenseMatrix<double>> rhs;
    Rng rng(0xdead);
    if (block) {
      DenseMatrix<double> b(a.rows(), nrhs);
      for (index_t c = 0; c < nrhs; ++c)
        for (index_t i = 0; i < a.rows(); ++i) b(i, c) = rng.scalar<double>();
      rhs.push_back(std::move(b));
    } else {
      for (index_t c = 0; c < nrhs; ++c) {
        DenseMatrix<double> b(a.rows(), 1);
        for (index_t i = 0; i < a.rows(); ++i) b(i, 0) = rng.scalar<double>();
        rhs.push_back(std::move(b));
      }
    }
    run_sequence<double>(opts, matrices, rhs, MatrixView<const double>());
  } else {
    std::printf("unknown -problem %s (poisson | varcoef | elasticity | maxwell | mtx)\n",
                problem.c_str());
    return 1;
  }
  return 0;
}
