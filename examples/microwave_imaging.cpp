// Microwave imaging forward problem (paper section V): one time-harmonic
// Maxwell system, a ring of antennas each exciting its own right-hand
// side, solved with the ORAS domain-decomposition preconditioner.
//
// Compares three of the paper's strategies on 8 antennas:
//   * consecutive GMRES solves           (the naive baseline)
//   * one pseudo-block GMRES             (fused kernels)
//   * one block GCRO-DR                  (block Krylov + deflation)
// and then extracts the "measurement" a tomography pipeline would use:
// the field each antenna induces at every other antenna.
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/maxwell3d.hpp"
#include "precond/schwarz.hpp"

int main() {
  using namespace bkr;
  using cd = std::complex<double>;
  MaxwellConfig cfg;
  cfg.n = 12;
  cfg.wavelengths = 1.6;
  cfg.loss = 0.15;
  cfg.inclusion_radius = 0.21;  // the object being imaged
  cfg.inclusion_eps_r = 3.0;
  const auto prob = maxwell3d(cfg);
  const index_t n = prob.nfree;
  const index_t antennas = 8;
  std::printf("imaging chamber: %lld complex unknowns, %lld antennas on a ring\n",
              static_cast<long long>(n), static_cast<long long>(antennas));

  DenseMatrix<cd> b(n, antennas);
  for (index_t a = 0; a < antennas; ++a) {
    const auto col = antenna_rhs(prob, a, antennas);
    std::copy(col.begin(), col.end(), b.col(a));
  }

  SchwarzOptions so;
  so.subdomains = 8;
  so.overlap = 2;
  so.kind = SchwarzKind::Oras;
  so.impedance = 0.5;
  Timer ts;
  SchwarzPreconditioner<cd> m(prob.matrix, so);
  std::printf("ORAS(8) setup: %.2f s\n\n", ts.seconds());
  CsrOperator<cd> op(prob.matrix);

  SolverOptions opts;
  opts.restart = 20;
  opts.tol = 1e-8;
  opts.side = PrecondSide::Right;
  opts.max_iterations = 3000;

  DenseMatrix<cd> fields(n, antennas);
  {  // naive: one antenna at a time
    Timer t;
    index_t iters = 0;
    for (index_t a = 0; a < antennas; ++a) {
      std::vector<cd> x(static_cast<size_t>(n), cd(0));
      const auto st = block_gmres<cd>(op, &m, MatrixView<const cd>(b.col(a), n, 1, n),
                                      MatrixView<cd>(x.data(), n, 1, n), opts);
      iters += st.iterations;
    }
    std::printf("%-28s %6.2f s  (%lld iterations)\n", "8x GMRES(20):", t.seconds(),
                static_cast<long long>(iters));
  }
  {  // fused lanes
    Timer t;
    DenseMatrix<cd> x(n, antennas);
    const auto st = pseudo_block_gmres<cd>(op, &m, b.view(), x.view(), opts);
    std::printf("%-28s %6.2f s  (%lld fused iterations)\n", "pseudo-BGMRES(20):", t.seconds(),
                static_cast<long long>(st.iterations));
  }
  {  // block + recycling
    Timer t;
    auto gopts = opts;
    gopts.recycle = 5;
    GcroDr<cd> solver(gopts);
    const auto st = solver.solve(op, &m, b.view(), fields.view());
    std::printf("%-28s %6.2f s  (%lld block iterations)%s\n", "BGCRO-DR(20,5):", t.seconds(),
                static_cast<long long>(st.iterations), st.converged ? "" : "  NOT CONVERGED");
  }

  // Scattering "measurements": |E_receiver| for each transmitter, i.e.
  // the data the inverse problem consumes. Receivers sample the RHS
  // footprints of the other antennas.
  std::printf("\ntransmission magnitudes |<b_r, E_t>| (rows: transmitter, cols: receiver):\n");
  for (index_t t = 0; t < antennas; ++t) {
    std::printf("  tx %lld:", static_cast<long long>(t));
    for (index_t r = 0; r < antennas; ++r) {
      cd s = 0;
      for (index_t i = 0; i < n; ++i) s += conj(b(i, r)) * fields(i, t);
      std::printf(" %9.2e", std::abs(s));
    }
    std::printf("\n");
  }
  std::printf("\n(the symmetric matrix above is the reciprocity check a tomography\n"
              " pipeline relies on: S_rt ~ S_tr for a symmetric operator)\n");
  return 0;
}
