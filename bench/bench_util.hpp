// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary prints the rows/series of one table or figure of the
// paper's evaluation (see DESIGN.md experiment index); these helpers keep
// the output format consistent so EXPERIMENTS.md can quote it directly.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "fem/maxwell3d.hpp"
#include "obs/trace.hpp"
#include "precond/schwarz.hpp"

namespace bkr::bench {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

// Print a convergence history as "iteration relative_residual" pairs,
// downsampled to at most `max_points` rows (gnuplot-ready).
inline void print_history(const std::string& label, const std::vector<double>& history,
                          size_t max_points = 40) {
  std::printf("# convergence %s (%zu iterations)\n", label.c_str(),
              history.empty() ? size_t(0) : history.size() - 1);
  const size_t stride = std::max<size_t>(1, history.size() / max_points);
  for (size_t i = 0; i < history.size(); i += stride)
    std::printf("%6zu  %10.3e\n", i, history[i]);
  if (!history.empty() && (history.size() - 1) % stride != 0)
    std::printf("%6zu  %10.3e\n", history.size() - 1, history.back());
}

// Per-RHS time/gain rows of figs. 2-3: "rhs time gain%".
inline void print_gain_rows(const std::vector<double>& baseline,
                            const std::vector<double>& candidate) {
  double base_total = 0, cand_total = 0;
  for (size_t i = 0; i < baseline.size(); ++i) {
    const double gain = 100.0 * (baseline[i] - candidate[i]) / baseline[i];
    std::printf("  rhs %zu: baseline %8.4f s   candidate %8.4f s   gain %+6.1f%%\n", i + 1,
                baseline[i], candidate[i], gain);
    base_total += baseline[i];
    cand_total += candidate[i];
  }
  std::printf("  cumulative gain: %+.1f%%  (baseline %.4f s, candidate %.4f s)\n",
              100.0 * (base_total - cand_total) / base_total, base_total, cand_total);
}

// Per-phase seconds/counts accumulated by a SolverTrace over a bench
// series — the "where does the time go" companion to the gain rows.
inline void print_phase_breakdown(const std::string& label, const obs::SolverTrace& trace) {
  std::printf("# phase breakdown %s (%.4f s instrumented of %.4f s total)\n", label.c_str(),
              trace.total_phase_seconds(), trace.total_solve_seconds());
  for (int ph = 0; ph < obs::kPhaseCount; ++ph) {
    const auto totals = trace.phase_totals(static_cast<obs::Phase>(ph));
    if (totals.count == 0 && totals.seconds == 0) continue;
    std::printf("  %-20s %10.4f s  x%lld\n", obs::phase_name(static_cast<obs::Phase>(ph)),
                totals.seconds, static_cast<long long>(totals.count));
  }
}

// The Maxwell "imaging chamber" analogue used by figs. 4, 7 and 8
// (documented substitution in DESIGN.md): unit cube filled with the
// dissipative matching medium, optionally with the plastic cylinder of
// section V-C.
inline MaxwellProblem chamber_problem(index_t grid, bool with_plastic_cylinder = false,
                                      double wavelengths = 2.0) {
  MaxwellConfig cfg;
  cfg.n = grid;
  cfg.wavelengths = wavelengths;
  cfg.eps_r = 1.0;
  cfg.loss = 0.15;  // dissipative matching solution
  if (with_plastic_cylinder) {
    cfg.inclusion_radius = 0.21;  // 12 cm cylinder in a ~56 cm chamber
    cfg.inclusion_eps_r = 3.0;
  }
  return maxwell3d(cfg);
}

// --- machine-readable kernel-bench trajectory (BENCH_kernels.json) --------
//
// bench_kernels emits one JSON document per run under the schema
// "bkr-bench-kernels-1"; tools/bench_check validates it and gates wall-time
// regressions against the committed baseline. Entries are keyed by
// (kernel, shape, threads) — threads == 0 is the legacy serial path with
// no executor attached — so runs at different sizes never collide.
// `calibration_seconds` (a fixed serial probe timed alongside the
// kernels) lets the checker normalize away absolute machine speed and
// compare trajectories across hosts.

struct KernelBenchEntry {
  std::string kernel;  // "spmv", "spmm", "gemm", "herk", "dot", "norms", "trsm"
  std::string shape;   // stable human-readable case id, part of the match key
  index_t threads = 0;  // executor lanes; 0 = legacy serial (ex == nullptr)
  double median_seconds = 0;
  int reps = 0;
};

inline double median_of(std::vector<double> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t mid = samples.size() / 2;
  return samples.size() % 2 == 1 ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
}

// Median wall time of `reps` runs of fn() (one untimed warmup first).
template <class Fn>
double time_median(int reps, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();
  std::vector<double> samples;
  samples.reserve(size_t(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    fn();
    samples.push_back(std::chrono::duration<double>(clock::now() - t0).count());
  }
  return median_of(std::move(samples));
}

inline void write_kernel_bench_json(std::ostream& os, const std::string& mode,
                                    index_t hardware_lanes, double calibration_seconds,
                                    const std::vector<KernelBenchEntry>& entries) {
  char buf[64];
  os << "{\n  \"schema\": \"bkr-bench-kernels-1\",\n";
  os << "  \"mode\": \"" << mode << "\",\n";
  os << "  \"hardware_lanes\": " << hardware_lanes << ",\n";
  std::snprintf(buf, sizeof buf, "%.9e", calibration_seconds);
  os << "  \"calibration_seconds\": " << buf << ",\n";
  os << "  \"entries\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    const KernelBenchEntry& e = entries[i];
    std::snprintf(buf, sizeof buf, "%.9e", e.median_seconds);
    os << "    {\"kernel\": \"" << e.kernel << "\", \"shape\": \"" << e.shape
       << "\", \"threads\": " << e.threads << ", \"median_seconds\": " << buf
       << ", \"reps\": " << e.reps << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

inline SchwarzOptions chamber_oras(index_t subdomains, index_t overlap = 2,
                                   double impedance = 0.5) {
  SchwarzOptions o;
  o.subdomains = subdomains;
  o.overlap = overlap;
  o.kind = SchwarzKind::Oras;
  o.impedance = impedance;
  return o;
}

}  // namespace bkr::bench
