// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary prints the rows/series of one table or figure of the
// paper's evaluation (see DESIGN.md experiment index); these helpers keep
// the output format consistent so EXPERIMENTS.md can quote it directly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "fem/maxwell3d.hpp"
#include "obs/trace.hpp"
#include "precond/schwarz.hpp"

namespace bkr::bench {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

// Print a convergence history as "iteration relative_residual" pairs,
// downsampled to at most `max_points` rows (gnuplot-ready).
inline void print_history(const std::string& label, const std::vector<double>& history,
                          size_t max_points = 40) {
  std::printf("# convergence %s (%zu iterations)\n", label.c_str(),
              history.empty() ? size_t(0) : history.size() - 1);
  const size_t stride = std::max<size_t>(1, history.size() / max_points);
  for (size_t i = 0; i < history.size(); i += stride)
    std::printf("%6zu  %10.3e\n", i, history[i]);
  if (!history.empty() && (history.size() - 1) % stride != 0)
    std::printf("%6zu  %10.3e\n", history.size() - 1, history.back());
}

// Per-RHS time/gain rows of figs. 2-3: "rhs time gain%".
inline void print_gain_rows(const std::vector<double>& baseline,
                            const std::vector<double>& candidate) {
  double base_total = 0, cand_total = 0;
  for (size_t i = 0; i < baseline.size(); ++i) {
    const double gain = 100.0 * (baseline[i] - candidate[i]) / baseline[i];
    std::printf("  rhs %zu: baseline %8.4f s   candidate %8.4f s   gain %+6.1f%%\n", i + 1,
                baseline[i], candidate[i], gain);
    base_total += baseline[i];
    cand_total += candidate[i];
  }
  std::printf("  cumulative gain: %+.1f%%  (baseline %.4f s, candidate %.4f s)\n",
              100.0 * (base_total - cand_total) / base_total, base_total, cand_total);
}

// Per-phase seconds/counts accumulated by a SolverTrace over a bench
// series — the "where does the time go" companion to the gain rows.
inline void print_phase_breakdown(const std::string& label, const obs::SolverTrace& trace) {
  std::printf("# phase breakdown %s (%.4f s instrumented of %.4f s total)\n", label.c_str(),
              trace.total_phase_seconds(), trace.total_solve_seconds());
  for (int ph = 0; ph < obs::kPhaseCount; ++ph) {
    const auto totals = trace.phase_totals(static_cast<obs::Phase>(ph));
    if (totals.count == 0 && totals.seconds == 0) continue;
    std::printf("  %-20s %10.4f s  x%lld\n", obs::phase_name(static_cast<obs::Phase>(ph)),
                totals.seconds, static_cast<long long>(totals.count));
  }
}

// The Maxwell "imaging chamber" analogue used by figs. 4, 7 and 8
// (documented substitution in DESIGN.md): unit cube filled with the
// dissipative matching medium, optionally with the plastic cylinder of
// section V-C.
inline MaxwellProblem chamber_problem(index_t grid, bool with_plastic_cylinder = false,
                                      double wavelengths = 2.0) {
  MaxwellConfig cfg;
  cfg.n = grid;
  cfg.wavelengths = wavelengths;
  cfg.eps_r = 1.0;
  cfg.loss = 0.15;  // dissipative matching solution
  if (with_plastic_cylinder) {
    cfg.inclusion_radius = 0.21;  // 12 cm cylinder in a ~56 cm chamber
    cfg.inclusion_eps_r = 3.0;
  }
  return maxwell3d(cfg);
}

inline SchwarzOptions chamber_oras(index_t subdomains, index_t overlap = 2,
                                   double impedance = 0.5) {
  SchwarzOptions o;
  o.subdomains = subdomains;
  o.overlap = overlap;
  o.kind = SchwarzKind::Oras;
  o.impedance = impedance;
  return o;
}

}  // namespace bkr::bench
