// Artifact-description reproduction (appendix E of the paper): the two
// small "does it run everywhere" checks comparing plain restarted GMRES
// against GCRO-DR on sequences of four systems.
//
//  * ex32 analogue: 2-D Poisson, one matrix, four RHS
//    (paper output: GMRES 81/65/77/65 = 288 total;
//     GCRO-DR 64/28/27/28 = 147 total — recycling roughly halves the
//     later solves).
//  * ex56 analogue: 3-D elasticity, four varying matrices
//    (paper output: GMRES 128/77/98/106 = 409;
//     GCRO-DR 70/60/79/38 = 247).
//
// Like the artifact, these run with a weak (Jacobi) preconditioner,
// rtol 1e-6, GMRES(30) / GCRO-DR(30,10).
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/elasticity3d.hpp"
#include "fem/poisson2d.hpp"
#include "precond/jacobi.hpp"

namespace {

using namespace bkr;

void print_table(const char* title, const std::vector<index_t>& iters,
                 const std::vector<double>& times) {
  std::printf("%s\n", title);
  index_t total_it = 0;
  double total_t = 0;
  for (size_t i = 0; i < iters.size(); ++i) {
    std::printf("    %zu %8lld %10.6f\n", i + 1, static_cast<long long>(iters[i]), times[i]);
    total_it += iters[i];
    total_t += times[i];
  }
  std::printf("    ------------------------\n");
  std::printf("      %8lld %10.6f\n", static_cast<long long>(total_it), total_t);
}

}  // namespace

int main() {
  using namespace bkr;
  SolverOptions gopts;
  gopts.restart = 30;
  gopts.tol = 1e-6;
  gopts.side = PrecondSide::Right;
  gopts.max_iterations = 10000;
  auto copts = gopts;
  copts.recycle = 10;

  bench::header("artifact E — ex32 analogue (2-D Poisson, 4 RHS, same matrix)");
  {
    const index_t grid = 40;
    const auto a = poisson2d(grid, grid);
    const index_t n = a.rows();
    CsrOperator<double> op(a);
    JacobiPreconditioner<double> m(a);
    std::vector<index_t> ig, ic;
    std::vector<double> tg, tc;
    auto recycle = copts;
    recycle.same_system = true;  // -hpddm_recycle_same_system
    GcroDr<double> solver(recycle);
    for (const double nu : kPoissonNus) {
      const auto b = poisson2d_rhs(grid, grid, nu);
      std::vector<double> xg(b.size(), 0.0), xc(b.size(), 0.0);
      Timer t1;
      const auto sg = gmres<double>(op, &m, b, xg, gopts);
      tg.push_back(t1.seconds());
      ig.push_back(sg.iterations);
      Timer t2;
      const auto sc = solver.solve(op, &m, MatrixView<const double>(b.data(), n, 1, n),
                                   MatrixView<double>(xc.data(), n, 1, n));
      tc.push_back(t2.seconds());
      ic.push_back(sc.iterations);
      if (!sg.converged || !sc.converged) std::printf("  WARNING: non-converged\n");
    }
    print_table("  reference (GMRES)      [paper: 81/65/77/65 -> 288]", ig, tg);
    print_table("  this library (GCRO-DR) [paper: 64/28/27/28 -> 147]", ic, tc);
  }

  bench::header("artifact E — ex56 analogue (3-D elasticity, 4 varying matrices)");
  {
    std::vector<index_t> ig, ic;
    std::vector<double> tg, tc;
    auto recycle = copts;
    recycle.strategy = RecycleStrategy::A;  // -hpddm_recycle_strategy A
    GcroDr<double> solver(recycle);
    for (const auto& inclusion : kElasticitySequence) {
      ElasticityConfig cfg;
      cfg.ne = 9;  // the artifact's -ne 9
      cfg.inclusion = inclusion;
      const auto prob = elasticity3d(cfg);
      const index_t n = prob.nfree;
      CsrOperator<double> op(prob.matrix);
      JacobiPreconditioner<double> m(prob.matrix);
      std::vector<double> xg(prob.rhs.size(), 0.0), xc(prob.rhs.size(), 0.0);
      Timer t1;
      const auto sg = gmres<double>(op, &m, prob.rhs, xg, gopts);
      tg.push_back(t1.seconds());
      ig.push_back(sg.iterations);
      Timer t2;
      const auto sc = solver.solve(op, &m, MatrixView<const double>(prob.rhs.data(), n, 1, n),
                                   MatrixView<double>(xc.data(), n, 1, n), nullptr,
                                   /*new_matrix=*/true);
      tc.push_back(t2.seconds());
      ic.push_back(sc.iterations);
      if (!sg.converged || !sc.converged) std::printf("  WARNING: non-converged\n");
    }
    print_table("  reference (GMRES)      [paper: 128/77/98/106 -> 409]", ig, tg);
    print_table("  this library (GCRO-DR) [paper: 70/60/79/38 -> 247]", ic, tc);
  }
  return 0;
}
