// Section III-D ablation: global synchronization (reduction) counts.
//
// The paper's communication analysis predicts, per cycle:
//  * GMRES(m): m projection reductions + m normalizations;
//  * GCRO-DR(m,k): 2(m-k) + (m-k) — one extra reduction per iteration for
//    the orthogonalization against C_k — so k = m/2 equalizes the per-
//    cycle projection count;
//  * CholQR / CGS need one reduction where MGS needs one per basis block;
//  * recycle strategy A costs one extra reduction per eigenproblem restart
//    (the [C V]^H U product of eq. 3a), strategy B none;
//  * with `same_system`, the distributed QR of A U_k (one reduction per
//    solve) and the restart eigenproblem disappear.
#include <cstdio>

#include "bench_util.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/poisson2d.hpp"

int main() {
  using namespace bkr;
  const index_t grid = 64;
  const auto a = poisson2d(grid, grid);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(grid, grid, 10.0);

  bench::header("reductions per iteration: GMRES vs GCRO-DR (the 2(m-k) vs m count)");
  {
    SolverOptions opts;
    opts.restart = 20;
    opts.tol = 1e-10;
    opts.ortho = Ortho::Cgs;  // match the paper's counting (single-pass)
    opts.max_iterations = 4000;
    CommModel comm_g;
    std::vector<double> xg(b.size(), 0.0);
    const auto sg = gmres<double>(op, nullptr, b, xg, opts, &comm_g);
    auto gopts = opts;
    gopts.recycle = 10;
    CommModel comm_c;
    GcroDr<double> solver(gopts);
    std::vector<double> xc(b.size(), 0.0);
    const auto sc = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                 MatrixView<double>(xc.data(), n, 1, n), &comm_c);
    std::printf("  GMRES(20):       %5lld iterations, %6lld reductions (%.2f per iteration)\n",
                static_cast<long long>(sg.iterations), static_cast<long long>(sg.reductions),
                double(sg.reductions) / double(sg.iterations));
    std::printf("  GCRO-DR(20,10):  %5lld iterations, %6lld reductions (%.2f per iteration)\n",
                static_cast<long long>(sc.iterations), static_cast<long long>(sc.reductions),
                double(sc.reductions) / double(sc.iterations));
    std::printf("  -> GCRO-DR pays ~1 extra reduction/iteration (the C_k projection) but\n");
    std::printf("     runs far fewer iterations; with k = m/2 the reductions per *cycle*\n");
    std::printf("     match: GMRES %lld/cycle vs GCRO-DR %lld/cycle\n",
                static_cast<long long>(sg.reductions / sg.cycles),
                static_cast<long long>(sc.reductions / sc.cycles));
  }

  bench::header("orthogonalization schemes (reductions per solve)");
  {
    for (const auto& [name, o] : {std::pair<const char*, Ortho>{"CGS   (fused)", Ortho::Cgs},
                                 {"CGS2  (reorthogonalized)", Ortho::Cgs2},
                                 {"MGS   (one per basis vector)", Ortho::Mgs}}) {
      SolverOptions opts;
      opts.restart = 30;
      opts.tol = 1e-8;
      opts.ortho = o;
      CommModel comm;
      std::vector<double> x(b.size(), 0.0);
      const auto st = gmres<double>(op, nullptr, b, x, opts, &comm);
      std::printf("  %-30s %6lld reductions over %4lld iterations (converged %d)\n", name,
                  static_cast<long long>(st.reductions), static_cast<long long>(st.iterations),
                  int(st.converged));
    }
  }

  bench::header("recycle strategy A (eq. 3a) vs B (eq. 3b) and same_system");
  {
    auto run_sequence = [&](RecycleStrategy strategy, bool same) {
      SolverOptions opts;
      opts.restart = 15;
      opts.recycle = 5;
      opts.tol = 1e-8;
      opts.strategy = strategy;
      opts.same_system = same;
      GcroDr<double> solver(opts);
      CommModel comm;
      std::int64_t reductions = 0;
      index_t iters = 0;
      for (const double nu : kPoissonNus) {
        const auto rhs = poisson2d_rhs(grid, grid, nu);
        std::vector<double> x(rhs.size(), 0.0);
        const auto st = solver.solve(op, nullptr, MatrixView<const double>(rhs.data(), n, 1, n),
                                     MatrixView<double>(x.data(), n, 1, n), &comm);
        reductions += st.reductions;
        iters += st.iterations;
      }
      return std::pair<std::int64_t, index_t>(reductions, iters);
    };
    const auto [ra, ia] = run_sequence(RecycleStrategy::A, false);
    const auto [rb, ib] = run_sequence(RecycleStrategy::B, false);
    const auto [rs, is] = run_sequence(RecycleStrategy::A, true);
    std::printf("  strategy A, refresh every restart:  %6lld reductions, %4lld iterations\n",
                static_cast<long long>(ra), static_cast<long long>(ia));
    std::printf("  strategy B, refresh every restart:  %6lld reductions, %4lld iterations\n",
                static_cast<long long>(rb), static_cast<long long>(ib));
    std::printf("  strategy A + same_system:           %6lld reductions, %4lld iterations\n",
                static_cast<long long>(rs), static_cast<long long>(is));
    std::printf("  -> per restart, A costs exactly one reduction more than B (eq. 3a's\n");
    std::printf("     distributed product); which strategy iterates better is problem-\n");
    std::printf("     dependent, exactly as the paper's technical-report reference notes\n");
    std::printf("     (here A is markedly more robust). The non-variable optimization\n");
    std::printf("     (section III-B) removes the recycle maintenance traffic entirely.\n");
  }
  return 0;
}
