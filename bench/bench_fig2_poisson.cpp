// Fig. 2 reproduction: Poisson's equation with four successive RHS on one
// matrix, FGCRO-DR(30,10) vs FGMRES(30), AMG preconditioner with a
// GMRES(s) smoother (nonlinear -> flexible variants), two preconditioner
// strengths.
//
// Paper (283M unknowns, 8192 cores): strong AMG — FGMRES 124 its,
// FGCRO-DR 90 its, cumulative gain +30.5%; weak AMG — 172 vs 137 its,
// +18.5%; and the weak-AMG FGCRO-DR beats the strong-AMG FGMRES in
// cumulative time. Problem scaled down for one node; the shape (who wins,
// by roughly what factor) is the reproduction target.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/poisson2d.hpp"
#include "precond/amg.hpp"

namespace {

using namespace bkr;

struct ConfigResult {
  std::vector<double> fgmres_times, fgcrodr_times;
  index_t fgmres_iters = 0, fgcrodr_iters = 0;
  std::vector<double> fgmres_history, fgcrodr_history;
  obs::SolverTrace fgmres_trace, fgcrodr_trace;
  double setup_seconds = 0;
  double fgmres_total() const {
    double s = 0;
    for (const double t : fgmres_times) s += t;
    return s;
  }
  double fgcrodr_total() const {
    double s = 0;
    for (const double t : fgcrodr_times) s += t;
    return s;
  }
};

ConfigResult run_config(const CsrMatrix<double>& a, index_t smoother_its) {
  const index_t n = a.rows();
  const index_t grid = index_t(std::sqrt(double(n)) + 0.5);
  AmgOptions amg_opts;
  amg_opts.threshold = 0.02;
  amg_opts.smoother = AmgSmoother::Gmres;
  amg_opts.smoother_iterations = smoother_its;
  Timer setup;
  AmgPreconditioner<double> m(a, amg_opts);
  ConfigResult out;
  out.setup_seconds = setup.seconds();
  CsrOperator<double> op(a);

  SolverOptions fopts;
  fopts.restart = 30;
  fopts.tol = 1e-8;
  fopts.side = PrecondSide::Flexible;
  fopts.max_iterations = 2000;
  fopts.trace = &out.fgmres_trace;
  auto gopts = fopts;
  gopts.recycle = 10;
  gopts.same_system = true;  // one matrix, varying RHS (section III-B)
  gopts.trace = &out.fgcrodr_trace;
  GcroDr<double> recycler(gopts);

  for (const double nu : kPoissonNus) {
    const auto b = poisson2d_rhs(grid, grid, nu);
    std::vector<double> xg(b.size(), 0.0), xc(b.size(), 0.0);
    Timer t1;
    const auto sg = block_gmres<double>(op, &m, MatrixView<const double>(b.data(), n, 1, n),
                                        MatrixView<double>(xg.data(), n, 1, n), fopts);
    out.fgmres_times.push_back(t1.seconds());
    out.fgmres_iters += sg.iterations;
    out.fgmres_history.insert(out.fgmres_history.end(), sg.history[0].begin(),
                              sg.history[0].end());
    Timer t2;
    const auto sc = recycler.solve(op, &m, MatrixView<const double>(b.data(), n, 1, n),
                                   MatrixView<double>(xc.data(), n, 1, n));
    out.fgcrodr_times.push_back(t2.seconds());
    out.fgcrodr_iters += sc.iterations;
    out.fgcrodr_history.insert(out.fgcrodr_history.end(), sc.history[0].begin(),
                               sc.history[0].end());
    if (!sg.converged || !sc.converged) std::printf("  WARNING: non-converged solve (nu=%g)\n", nu);
  }
  return out;
}

}  // namespace

int main() {
  using namespace bkr;
  const index_t grid = 256;  // 65,536 unknowns (paper: 283M)
  // Heterogeneous diffusion (contrast-500 inclusions): at single-node
  // scale this recreates the AMG-preconditioned outlier spectrum that the
  // paper's 283M-unknown uniform Poisson exhibits — the regime where
  // deflation/recycling pays (see DESIGN.md substitutions).
  const auto a = poisson2d_varcoef(grid, grid, 500.0, 24);
  std::printf("Poisson 2-D (heterogeneous), %lld unknowns, 4 RHS with nu = {0.1, 10, 0.001, 100}\n",
              static_cast<long long>(a.rows()));

  bench::header("fig. 2a/2b — strong AMG (GMRES(3) smoother)");
  const auto strong = run_config(a, 3);
  std::printf("preconditioner setup: %.3f s\n", strong.setup_seconds);
  std::printf("total iterations: FGMRES(30) %lld | FGCRO-DR(30,10) %lld  (paper: 124 | 90)\n",
              static_cast<long long>(strong.fgmres_iters),
              static_cast<long long>(strong.fgcrodr_iters));
  bench::print_gain_rows(strong.fgmres_times, strong.fgcrodr_times);
  bench::print_history("FGMRES(30), strong AMG", strong.fgmres_history);
  bench::print_history("FGCRO-DR(30,10), strong AMG", strong.fgcrodr_history);
  bench::print_phase_breakdown("FGMRES(30), strong AMG", strong.fgmres_trace);
  bench::print_phase_breakdown("FGCRO-DR(30,10), strong AMG", strong.fgcrodr_trace);

  bench::header("fig. 2c/2d — weak AMG (GMRES(1) smoother)");
  const auto weak = run_config(a, 1);
  std::printf("preconditioner setup: %.3f s\n", weak.setup_seconds);
  std::printf("total iterations: FGMRES(30) %lld | FGCRO-DR(30,10) %lld  (paper: 172 | 137)\n",
              static_cast<long long>(weak.fgmres_iters),
              static_cast<long long>(weak.fgcrodr_iters));
  bench::print_gain_rows(weak.fgmres_times, weak.fgcrodr_times);
  bench::print_history("FGMRES(30), weak AMG", weak.fgmres_history);
  bench::print_history("FGCRO-DR(30,10), weak AMG", weak.fgcrodr_history);
  bench::print_phase_breakdown("FGMRES(30), weak AMG", weak.fgmres_trace);
  bench::print_phase_breakdown("FGCRO-DR(30,10), weak AMG", weak.fgcrodr_trace);

  bench::header("cross-configuration observation (paper section IV-B)");
  std::printf(
      "strong-AMG FGMRES cumulative solve: %.4f s\n"
      "weak-AMG  FGCRO-DR cumulative solve: %.4f s  (paper: the latter wins "
      "once setup is included; setup strong %.3f s vs weak %.3f s)\n",
      strong.fgmres_total(), weak.fgcrodr_total(), strong.setup_seconds, weak.setup_seconds);
  return 0;
}
