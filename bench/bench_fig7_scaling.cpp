// Fig. 7 reproduction: strong scaling of the Maxwell ORAS solver.
//
// Paper (119M complex unknowns, 512 -> 4096 subdomains): setup time drops
// superlinearly (smaller local factorizations), solve time drops while
// the iteration count grows slowly (54 -> 94, one-level method), overall
// speedup ~6.9x over an 8x increase in subdomains.
//
// Single-node reproduction: the problem is fixed, the subdomain count
// sweeps 4 -> 64; per-subdomain work is measured and reduced as a max
// (critical path of an ideal distributed run — substitution documented in
// DESIGN.md) plus a log2(N) reduction model for the Krylov
// synchronizations.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/gmres.hpp"
#include "precond/schwarz.hpp"

int main() {
  using namespace bkr;
  using cd = std::complex<double>;
  const index_t grid = 16;  // 10,800 complex unknowns (paper: 119M)
  const auto prob = bench::chamber_problem(grid);
  const auto b = antenna_rhs(prob, 0, 32);
  std::printf("Maxwell chamber analogue: %lld complex unknowns\n",
              static_cast<long long>(prob.nfree));

  bench::header("fig. 7 — strong scaling: N | setup | solve | iterations | speedup");
  std::printf("  (times are critical-path: max over subdomains + modeled log2(N) reductions)\n");
  std::printf("  %6s %12s %12s %8s %9s %12s\n", "N", "setup (s)", "solve (s)", "iters",
              "speedup", "1-node time");
  double t_first = 0;
  obs::SolverTrace trace;  // accumulates one record per N of the sweep
  for (const index_t nsub : {4, 8, 16, 32, 64}) {
    SchwarzOptions o = bench::chamber_oras(nsub, 2, 0.5);
    SchwarzPreconditioner<cd> m(prob.matrix, o);
    CsrOperator<cd> op(prob.matrix);
    CommModel comm;
    SolverOptions opts;
    opts.restart = 500;  // Full GMRES, as in the paper
    opts.tol = 1e-8;
    opts.max_iterations = 500;
    opts.side = PrecondSide::Right;
    opts.trace = &trace;
    std::vector<cd> x(b.size(), cd(0));
    Timer tsolve;
    const auto st = gmres<cd>(op, &m, b, x, opts, &comm);
    const double wall = tsolve.seconds();
    const double setup_cp = m.stats().setup_seconds_max;
    // Solve critical path: max local solve per apply + the non-Schwarz
    // Krylov work divided over N (it is embarrassingly row-parallel) +
    // modeled reduction latency.
    const double solve_cp = m.stats().apply_seconds_max +
                            (wall - m.stats().apply_seconds_sum) / double(nsub) +
                            comm.modeled_seconds(nsub);
    const double total = setup_cp + solve_cp;
    if (t_first == 0) t_first = total;
    std::printf("  %6lld %12.4f %12.4f %8lld %8.2fx %12.4f\n", static_cast<long long>(nsub),
                setup_cp, solve_cp, static_cast<long long>(st.iterations), t_first / total,
                m.stats().setup_seconds_sum + wall);
    if (!st.converged) std::printf("  WARNING: N=%lld did not converge\n",
                                   static_cast<long long>(nsub));
  }
  bench::print_phase_breakdown("GMRES(full), ORAS, sweep total", trace);
  std::printf("\npaper: N=512..4096, iterations 54 -> 94, speedup 6.9x at 8x subdomains\n");
  return 0;
}
