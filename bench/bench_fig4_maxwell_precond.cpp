// Fig. 4 reproduction: GMRES convergence on the time-harmonic Maxwell
// system with standard preconditioners vs the optimized Schwarz method
// M^{-1}_ORAS of eq. 6.
//
// Paper (50M complex unknowns, 512 processes): ORAS converges in a few
// dozen iterations; ASM with overlap 1 or 2 converges much slower; GAMG
// stalls far from tolerance. Scaled-down shape target: same ranking.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/gmres.hpp"
#include "precond/amg.hpp"
#include "precond/schwarz.hpp"

int main() {
  using namespace bkr;
  using cd = std::complex<double>;
  const index_t grid = 16;  // 10,800 complex unknowns (paper: 50M)
  const auto prob = bench::chamber_problem(grid);
  std::printf("Maxwell chamber analogue: %lld complex unknowns, %.1f wavelengths, loss %.2f\n",
              static_cast<long long>(prob.nfree), prob.config.wavelengths, prob.config.loss);
  const auto b = antenna_rhs(prob, 0, 32);
  CsrOperator<cd> op(prob.matrix);
  SolverOptions opts;
  opts.restart = 400;  // "Full GMRES" as in the paper's fig. 4
  opts.tol = 1e-8;
  opts.max_iterations = 400;
  opts.side = PrecondSide::Right;

  auto run = [&](Preconditioner<cd>& m, const char* name) {
    std::vector<cd> x(b.size(), cd(0));
    Timer t;
    const auto st = gmres<cd>(op, &m, b, x, opts);
    std::printf("%-24s iterations %4lld  converged %d  final residual %.2e  (%.2f s)\n", name,
                static_cast<long long>(st.iterations), int(st.converged), st.history[0].back(),
                t.seconds());
    bench::print_history(name, st.history[0], 25);
  };

  bench::header("fig. 4 — GMRES convergence per preconditioner");
  {
    SchwarzOptions o = bench::chamber_oras(16, 2, 0.5);
    SchwarzPreconditioner<cd> m(prob.matrix, o);
    run(m, "ORAS (eq. 6, delta=2)");
  }
  {
    SchwarzOptions o;
    o.subdomains = 16;
    o.overlap = 1;
    o.kind = SchwarzKind::Asm;
    SchwarzPreconditioner<cd> m(prob.matrix, o);
    run(m, "ASM overlap 1");
  }
  {
    SchwarzOptions o;
    o.subdomains = 16;
    o.overlap = 2;
    o.kind = SchwarzKind::Asm;
    SchwarzPreconditioner<cd> m(prob.matrix, o);
    run(m, "ASM overlap 2");
  }
  {
    AmgOptions o;
    o.smoother = AmgSmoother::Jacobi;
    o.smoother_iterations = 2;
    AmgPreconditioner<cd> m(prob.matrix, o);
    run(m, "AMG (GAMG analogue)");
  }
  return 0;
}
