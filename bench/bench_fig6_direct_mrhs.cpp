// Fig. 6 reproduction: scalability of the sparse direct solver's solution
// phase with multiple RHS and multiple threads.
//
// Paper (PARDISO, 300k-unknown complex Maxwell cube, 83 nnz/row): the
// efficiency E(P,p) = p*T(1,1)/(P*T(P,p)) is superlinear in p even for
// P = 1 (BLAS-3 reuse of the factor), and with many threads only large p
// reaches a useful regime. Here T(1,p) is measured directly — the factor
// is traversed once per RHS panel, so blocking over p raises arithmetic
// intensity exactly as in the paper. The P-axis on this single-core host
// is modeled as the critical path over P RHS panels, each measured
// serially (documented substitution in DESIGN.md).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "common/rng.hpp"
#include "direct/factor.hpp"
#include "fem/maxwell3d.hpp"

int main() {
  using namespace bkr;
  using cd = std::complex<double>;
  MaxwellConfig cfg;
  cfg.n = 14;  // ~8k complex unknowns (paper: 300k)
  cfg.wavelengths = 1.2;
  cfg.loss = 0.2;
  const auto prob = maxwell3d(cfg);
  std::printf("Maxwell cube: %lld complex unknowns, %.1f nnz/row\n",
              static_cast<long long>(prob.nfree),
              double(prob.matrix.nnz()) / double(prob.nfree));
  Timer tf;
  const SparseLDLT<cd> factor(prob.matrix);
  std::printf("factorization: %.3f s, factor nnz %lld (%.1fx fill)\n", tf.seconds(),
              static_cast<long long>(factor.factor_nnz()),
              double(factor.factor_nnz()) / double(prob.matrix.nnz()));

  const index_t n = prob.nfree;
  const std::vector<index_t> rhs_counts = {1, 2, 4, 8, 16, 32, 64, 128};
  const std::vector<index_t> thread_counts = {1, 2, 4, 8, 16};

  // Random RHS block (paper: each RHS generated randomly).
  DenseMatrix<cd> rhs(n, 128);
  {
    Rng rng(0xf16);
    for (index_t c = 0; c < 128; ++c)
      for (index_t i = 0; i < n; ++i) rhs(i, c) = rng.scalar<cd>();
  }

  // Measured serial solve time for a panel of width w (average of 2 runs,
  // like the paper's table).
  auto panel_time = [&](index_t j0, index_t w) {
    double total = 0;
    for (int rep = 0; rep < 2; ++rep) {
      DenseMatrix<cd> x(n, w);
      copy_into<cd>(rhs.block(0, j0, n, w), x.view());
      Timer t;
      factor.solve(x.view());
      total += t.seconds();
    }
    return total / 2;
  };

  // T(P,p): the p RHS are split into P panels; the modeled parallel time
  // is the slowest panel (critical path).
  DenseMatrix<double> tpp(index_t(thread_counts.size()), index_t(rhs_counts.size()));
  for (size_t pi = 0; pi < thread_counts.size(); ++pi) {
    const index_t threads = thread_counts[pi];
    for (size_t ri = 0; ri < rhs_counts.size(); ++ri) {
      const index_t p = rhs_counts[ri];
      const index_t panels = std::min(threads, p);
      const index_t width = (p + panels - 1) / panels;
      double critical = 0;
      for (index_t j0 = 0; j0 < p; j0 += width)
        critical = std::max(critical, panel_time(j0, std::min(width, p - j0)));
      tpp(index_t(pi), index_t(ri)) = critical;
    }
  }

  bench::header("fig. 6b — time of the solution phase T(P,p) in seconds");
  std::printf("        p:");
  for (const auto p : rhs_counts) std::printf(" %8lld", static_cast<long long>(p));
  std::printf("\n");
  for (size_t pi = 0; pi < thread_counts.size(); ++pi) {
    std::printf("  P = %3lld:", static_cast<long long>(thread_counts[pi]));
    for (size_t ri = 0; ri < rhs_counts.size(); ++ri)
      std::printf(" %8.4f", tpp(index_t(pi), index_t(ri)));
    std::printf("\n");
  }

  bench::header("fig. 6a — efficiency E(P,p) = p*T(1,1) / (P*T(P,p)) in percent");
  const double t11 = tpp(0, 0);
  std::printf("        p:");
  for (const auto p : rhs_counts) std::printf(" %8lld", static_cast<long long>(p));
  std::printf("\n");
  bool superlinear_seen = false;
  for (size_t pi = 0; pi < thread_counts.size(); ++pi) {
    std::printf("  P = %3lld:", static_cast<long long>(thread_counts[pi]));
    for (size_t ri = 0; ri < rhs_counts.size(); ++ri) {
      const double eff = 100.0 * double(rhs_counts[ri]) * t11 /
                         (double(thread_counts[pi]) * tpp(index_t(pi), index_t(ri)));
      if (pi == 0 && eff > 110.0) superlinear_seen = true;
      std::printf(" %7.0f%%", eff);
    }
    std::printf("\n");
  }
  std::printf("\nsuperlinear single-thread efficiency observed (paper's key claim): %s\n",
              superlinear_seen ? "yes" : "no");
  return 0;
}
