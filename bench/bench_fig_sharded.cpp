// Sharded SPMD layer benchmark: shard-count sweep of the Poisson solves
// with one-level Schwarz vs. the subdomain-deflation two-level method
// (DESIGN.md §13).
//
// Two claims of the sharded layer are machine-checkable and gated by
// tools/bench_check on the emitted JSON (schema "bkr-bench-sharded-1"):
//   1. shard invariance — the tree-reduction solver history is bitwise
//      independent of the shard count, so iteration counts for the same
//      (case, coarse) pair must agree across the whole shard sweep;
//   2. deflation pays — the two-level method converges in strictly fewer
//      iterations than its one-level counterpart on every case.
// Timings (setup/solve seconds) ride along for the human-readable table
// but are not gated: single-node shard counts model communication, they
// do not add cores.
//
// Usage: bench_fig_sharded [--smoke] [--out FILE]
//   --smoke   smaller grid (tier-1 gate); identical keys per case name,
//             so the gates apply unchanged
//   --out     write the JSON there instead of BENCH_sharded.json
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/gmres.hpp"
#include "fem/poisson2d.hpp"
#include "precond/coarse_space.hpp"
#include "precond/schwarz.hpp"

namespace {

struct Row {
  std::string case_name;
  bkr::index_t shards = 0;
  bkr::index_t coarse = 0;
  bkr::index_t iterations = 0;
  bool converged = false;
  double setup_seconds = 0;
  double solve_seconds = 0;
};

void write_json(std::ostream& os, const std::string& mode, const std::vector<Row>& rows) {
  char buf[64];
  os << "{\n  \"schema\": \"bkr-bench-sharded-1\",\n";
  os << "  \"mode\": \"" << mode << "\",\n";
  os << "  \"entries\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"case\": \"" << r.case_name << "\", \"shards\": " << r.shards
       << ", \"coarse\": " << r.coarse << ", \"iterations\": " << r.iterations
       << ", \"converged\": " << (r.converged ? "true" : "false");
    std::snprintf(buf, sizeof buf, "%.9e", r.setup_seconds);
    os << ", \"setup_seconds\": " << buf;
    std::snprintf(buf, sizeof buf, "%.9e", r.solve_seconds);
    os << ", \"solve_seconds\": " << buf << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bkr;
  std::string out_path = "BENCH_sharded.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_fig_sharded [--smoke] [--out FILE]\n");
      return 2;
    }
  }

  const index_t grid = smoke ? 32 : 64;
  // Enough subdomains that the one-level method is in its degrading regime
  // (low-frequency error crossing many subdomains) — the setting where the
  // coarse space pays, per section V-A.
  const index_t nsub = smoke ? 8 : 16;
  struct Case {
    std::string name;
    CsrMatrix<double> a;
  };
  std::vector<Case> cases;
  cases.push_back({"poisson2d-" + std::to_string(grid), poisson2d(grid, grid)});
  cases.push_back({"poisson2d-varcoef-" + std::to_string(grid),
                   poisson2d_varcoef(grid, grid, 1e3)});

  const std::vector<index_t> shard_sweep = smoke ? std::vector<index_t>{1, 2, 4}
                                                 : std::vector<index_t>{1, 2, 4, 7};
  std::vector<Row> rows;
  bench::header("sharded SPMD sweep — case | coarse | shards | iters | setup | solve");
  for (const Case& c : cases) {
    const std::vector<double> b = poisson2d_rhs(grid, grid, kPoissonNus[0]);
    for (const index_t coarse : {index_t(0), nsub}) {
      for (const index_t shards : shard_sweep) {
        Timer tsetup;
        SchwarzOptions so;
        so.subdomains = nsub;
        so.overlap = 1;
        so.kind = SchwarzKind::Ras;
        SchwarzPreconditioner<double> inner(c.a, so);
        std::unique_ptr<TwoLevelPreconditioner<double>> two;
        Preconditioner<double>* m = &inner;
        if (coarse > 0) {
          CoarseSpaceOptions copts;
          copts.subdomains = coarse;
          two = std::make_unique<TwoLevelPreconditioner<double>>(
              c.a, &inner, copts, CoarseCorrection::Multiplicative);
          m = two.get();
        }
        const double setup = tsetup.seconds();

        CommModel comm;
        ShardedOperator<double> op(c.a, shards, &comm);
        SolverOptions opts;
        opts.tol = 1e-8;
        opts.restart = 100;
        opts.max_iterations = 400;
        opts.side = PrecondSide::Right;
        opts.shards = shards;
        std::vector<double> x(b.size(), 0.0);
        Timer tsolve;
        const auto st = gmres<double>(op, m, b, x, opts, &comm);
        const double solve = tsolve.seconds();
        rows.push_back({c.name, shards, coarse, st.iterations, st.converged, setup, solve});
        std::printf("  %-22s %6lld %7lld %6lld %10.4f %10.4f%s\n", c.name.c_str(),
                    static_cast<long long>(coarse), static_cast<long long>(shards),
                    static_cast<long long>(st.iterations), setup, solve,
                    st.converged ? "" : "  NOT CONVERGED");
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_fig_sharded: cannot write %s\n", out_path.c_str());
    return 1;
  }
  write_json(out, smoke ? "smoke" : "full", rows);
  std::printf("bench_fig_sharded: wrote %zu entries (%s) to %s\n", rows.size(),
              smoke ? "smoke" : "full", out_path.c_str());
  return 0;
}
