// Fig. 3 reproduction: four slowly varying 3-D linear elasticity systems
// (moving soft spherical inclusion), AMG preconditioner with rigid-body
// near-nullspace.
//
//  (a/b) FGCRO-DR(30,10) vs FGMRES(30), CG(4) smoother (nonlinear ->
//        flexible variants mandatory). Paper: 235 vs 189 iterations,
//        cumulative time gain +36.0%.
//  (c/d) GCRO-DR(30,10) vs LGMRES(30,10), Chebyshev smoother (linear),
//        right preconditioning. Paper: 269 vs 173 iterations, +15.1%.
//
// The matrices change between solves, so the recycled space is
// re-orthonormalized through the distributed QR of A U_k (fig. 1 lines
// 4-6) and refreshed by the generalized eigenproblem at each restart.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "fem/elasticity3d.hpp"
#include "precond/amg.hpp"

namespace {

using namespace bkr;

ElasticityProblem make_system(index_t ne, const Inclusion& inclusion) {
  ElasticityConfig cfg;
  cfg.ne = ne;
  cfg.inclusion = inclusion;
  // Near-incompressible material: at single-node scale the full-strength
  // AMG converges in a handful of iterations and nothing is
  // restart-limited; nu -> 1/2 recreates the paper's iteration regime
  // (DESIGN.md, substitutions).
  cfg.poisson = 0.49;
  return elasticity3d(cfg);
}

AmgPreconditioner<double> make_amg(const ElasticityProblem& prob, AmgSmoother smoother,
                                   index_t iterations) {
  AmgOptions o;
  o.block_size = 3;
  o.smoother = smoother;
  o.smoother_iterations = iterations;
  o.square_graph = true;
  o.coarse_size = 300;
  // Translational near-nullspace only: the rotational near-kernel then
  // plays the role of the slow modes that problem size creates in the
  // paper's runs — the deflation target of GCRO-DR.
  return AmgPreconditioner<double>(
      prob.matrix, o,
      MatrixView<const double>(prob.rigid_body_modes.data(), prob.nfree, 3,
                               prob.rigid_body_modes.ld()));
}

}  // namespace

int main() {
  using namespace bkr;
  const index_t ne = 14;  // 9,450 dofs (paper: 192M-283M)
  std::printf("3-D linear elasticity, ne=%lld (%lld dofs), 4 varying systems (moving inclusion)\n",
              static_cast<long long>(ne),
              static_cast<long long>(make_system(ne, kElasticitySequence[0]).nfree));

  // --- fig. 3a/3b: FGMRES vs FGCRO-DR, CG(4) smoother (flexible) -------
  bench::header("fig. 3a/3b — FGCRO-DR(30,10) vs FGMRES(30), CG(4) smoother");
  {
    SolverOptions fopts;
    fopts.restart = 30;
    fopts.tol = 1e-8;
    fopts.side = PrecondSide::Flexible;
    fopts.max_iterations = 3000;
    obs::SolverTrace tr_fgmres, tr_fgcrodr;
    fopts.trace = &tr_fgmres;
    auto gopts = fopts;
    gopts.recycle = 10;
    gopts.strategy = RecycleStrategy::A;  // the paper's artifact uses A here
    gopts.trace = &tr_fgcrodr;
    GcroDr<double> recycler(gopts);
    std::vector<double> t_fgmres, t_fgcrodr;
    index_t it_fgmres = 0, it_fgcrodr = 0;
    double setup_total = 0;
    std::vector<double> hist_g, hist_c;
    for (const auto& inclusion : kElasticitySequence) {
      const auto prob = make_system(ne, inclusion);
      Timer ts;
      auto m = make_amg(prob, AmgSmoother::Cg, 4);
      setup_total += ts.seconds();
      CsrOperator<double> op(prob.matrix);
      const index_t n = prob.nfree;
      std::vector<double> xg(prob.rhs.size(), 0.0), xc(prob.rhs.size(), 0.0);
      Timer t1;
      const auto sg = block_gmres<double>(op, &m, MatrixView<const double>(prob.rhs.data(), n, 1, n),
                                          MatrixView<double>(xg.data(), n, 1, n), fopts);
      t_fgmres.push_back(t1.seconds());
      it_fgmres += sg.iterations;
      hist_g.insert(hist_g.end(), sg.history[0].begin(), sg.history[0].end());
      Timer t2;
      const auto sc = recycler.solve(op, &m, MatrixView<const double>(prob.rhs.data(), n, 1, n),
                                     MatrixView<double>(xc.data(), n, 1, n), nullptr,
                                     /*new_matrix=*/true);
      t_fgcrodr.push_back(t2.seconds());
      it_fgcrodr += sc.iterations;
      hist_c.insert(hist_c.end(), sc.history[0].begin(), sc.history[0].end());
      if (!sg.converged || !sc.converged) std::printf("  WARNING: non-converged solve\n");
    }
    std::printf("preconditioner setups (4 matrices): %.3f s total\n", setup_total);
    std::printf("total iterations: FGMRES(30) %lld | FGCRO-DR(30,10) %lld  (paper: 235 | 189)\n",
                static_cast<long long>(it_fgmres), static_cast<long long>(it_fgcrodr));
    bench::print_gain_rows(t_fgmres, t_fgcrodr);
    bench::print_history("FGMRES(30), CG(4) smoother", hist_g);
    bench::print_history("FGCRO-DR(30,10), CG(4) smoother", hist_c);
    bench::print_phase_breakdown("FGMRES(30), CG(4) smoother", tr_fgmres);
    bench::print_phase_breakdown("FGCRO-DR(30,10), CG(4) smoother", tr_fgcrodr);
  }

  // --- fig. 3c/3d: LGMRES vs GCRO-DR, Chebyshev smoother (linear) ------
  bench::header("fig. 3c/3d — GCRO-DR(30,10) vs LGMRES(30,10), Chebyshev smoother, right precond");
  {
    SolverOptions lopts;
    lopts.restart = 30;
    lopts.recycle = 10;  // LGMRES augmentation count
    lopts.tol = 1e-8;
    lopts.side = PrecondSide::Right;
    lopts.max_iterations = 3000;
    obs::SolverTrace tr_lgmres, tr_gcrodr;
    lopts.trace = &tr_lgmres;
    auto gopts = lopts;
    gopts.strategy = RecycleStrategy::A;
    gopts.trace = &tr_gcrodr;
    GcroDr<double> recycler(gopts);
    std::vector<double> t_lgmres, t_gcrodr;
    index_t it_lgmres = 0, it_gcrodr = 0;
    std::vector<double> hist_l, hist_c;
    for (const auto& inclusion : kElasticitySequence) {
      const auto prob = make_system(ne, inclusion);
      auto m = make_amg(prob, AmgSmoother::Chebyshev, 2);
      CsrOperator<double> op(prob.matrix);
      const index_t n = prob.nfree;
      std::vector<double> xl(prob.rhs.size(), 0.0), xc(prob.rhs.size(), 0.0);
      Timer t1;
      const auto sl = lgmres<double>(op, &m, prob.rhs, xl, lopts);
      t_lgmres.push_back(t1.seconds());
      it_lgmres += sl.iterations;
      hist_l.insert(hist_l.end(), sl.history[0].begin(), sl.history[0].end());
      Timer t2;
      const auto sc = recycler.solve(op, &m, MatrixView<const double>(prob.rhs.data(), n, 1, n),
                                     MatrixView<double>(xc.data(), n, 1, n), nullptr,
                                     /*new_matrix=*/true);
      t_gcrodr.push_back(t2.seconds());
      it_gcrodr += sc.iterations;
      hist_c.insert(hist_c.end(), sc.history[0].begin(), sc.history[0].end());
      if (!sl.converged || !sc.converged) std::printf("  WARNING: non-converged solve\n");
    }
    std::printf("total iterations: LGMRES(30,10) %lld | GCRO-DR(30,10) %lld  (paper: 269 | 173)\n",
                static_cast<long long>(it_lgmres), static_cast<long long>(it_gcrodr));
    bench::print_gain_rows(t_lgmres, t_gcrodr);
    bench::print_history("LGMRES(30,10), Chebyshev smoother", hist_l);
    bench::print_history("GCRO-DR(30,10), Chebyshev smoother", hist_c);
    bench::print_phase_breakdown("LGMRES(30,10), Chebyshev smoother", tr_lgmres);
    bench::print_phase_breakdown("GCRO-DR(30,10), Chebyshev smoother", tr_gcrodr);
  }
  return 0;
}
