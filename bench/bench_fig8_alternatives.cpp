// Fig. 8 reproduction: eight ways to solve the Maxwell system with 32
// antenna RHS, combining recycling and (pseudo-)block methods.
//
// Paper (89M complex unknowns, 4096 subdomains, GMRES(50)/GCRO-DR(50,10)):
//   1) 32x GMRES                       (reference)        speedup 1.0
//   2) 32x GCRO-DR                                        1.7
//   3) 1x pseudo-BGMRES, 32 RHS                           2.0
//   4) 1x BGMRES, 32 RHS                                  4.2
//   5) 4x pseudo-BGCRO-DR, 8 RHS                          2.3
//   6) 1x pseudo-BGCRO-DR, 32 RHS                         2.2
//   7) 4x BGCRO-DR, 8 RHS              (best time)        4.5
//   8) 1x BGCRO-DR, 32 RHS             (fewest iterations) 3.1
// Scaled down: grid 14 chamber + plastic cylinder, ORAS(16), m=20, k=5.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "precond/schwarz.hpp"

namespace {

using namespace bkr;
using cd = std::complex<double>;

struct Row {
  const char* name;
  index_t p;
  double seconds;
  index_t iterations;        // total (block) iterations over all solves
  index_t per_rhs;           // average iterations per RHS (0 if p == 32)
  bool converged;
};

}  // namespace

int main() {
  using namespace bkr;
  const index_t grid = 14;
  const index_t nrhs = 32;
  const auto prob = bench::chamber_problem(grid, /*with_plastic_cylinder=*/true);
  const index_t n = prob.nfree;
  std::printf("Maxwell chamber + plastic cylinder: %lld complex unknowns, %lld antenna RHS\n",
              static_cast<long long>(n), static_cast<long long>(nrhs));
  DenseMatrix<cd> b(n, nrhs);
  for (index_t a = 0; a < nrhs; ++a) {
    const auto col = antenna_rhs(prob, a, nrhs);
    std::copy(col.begin(), col.end(), b.col(a));
  }
  Timer tsetup;
  SchwarzPreconditioner<cd> m(prob.matrix, bench::chamber_oras(16, 2, 0.5));
  const double setup = tsetup.seconds();
  std::printf("ORAS(16) setup: %.2f s (done once, shared by every alternative)\n", setup);
  CsrOperator<cd> op(prob.matrix);

  SolverOptions base;
  base.restart = 20;  // paper: 50 (scaled with the problem)
  base.tol = 1e-8;
  base.side = PrecondSide::Right;
  base.max_iterations = 4000;
  auto recycle_opts = [&](bool same) {
    auto o = base;
    o.recycle = 5;  // paper: 10
    o.same_system = same;
    return o;
  };

  std::vector<Row> rows;

  // 1) 32 consecutive GMRES solves (reference).
  {
    Timer t;
    index_t total = 0;
    bool ok = true;
    for (index_t a = 0; a < nrhs; ++a) {
      std::vector<cd> x(static_cast<size_t>(n), cd(0));
      const auto st = block_gmres<cd>(op, &m, MatrixView<const cd>(b.col(a), n, 1, n),
                                      MatrixView<cd>(x.data(), n, 1, n), base);
      total += st.iterations;
      ok &= st.converged;
    }
    rows.push_back({"1) 32x GMRES(20)", 1, t.seconds(), total, total / nrhs, ok});
  }
  // 2) 32 consecutive GCRO-DR solves (recycling across RHS).
  {
    Timer t;
    index_t total = 0;
    bool ok = true;
    GcroDr<cd> solver(recycle_opts(true));
    for (index_t a = 0; a < nrhs; ++a) {
      std::vector<cd> x(static_cast<size_t>(n), cd(0));
      const auto st = solver.solve(op, &m, MatrixView<const cd>(b.col(a), n, 1, n),
                                   MatrixView<cd>(x.data(), n, 1, n));
      total += st.iterations;
      ok &= st.converged;
    }
    rows.push_back({"2) 32x GCRO-DR(20,5)", 1, t.seconds(), total, total / nrhs, ok});
  }
  // 3) one pseudo-block GMRES with all 32 RHS.
  {
    Timer t;
    DenseMatrix<cd> x(n, nrhs);
    const auto st = pseudo_block_gmres<cd>(op, &m, b.view(), x.view(), base);
    rows.push_back({"3) pseudo-BGMRES(20), 32 RHS", 32, t.seconds(), st.iterations, 0,
                    st.converged});
  }
  // 4) one block GMRES with all 32 RHS.
  {
    Timer t;
    DenseMatrix<cd> x(n, nrhs);
    const auto st = block_gmres<cd>(op, &m, b.view(), x.view(), base);
    rows.push_back({"4) BGMRES(20), 32 RHS", 32, t.seconds(), st.iterations, 0, st.converged});
  }
  // 5) four consecutive pseudo-block GCRO-DR solves with 8 RHS.
  {
    Timer t;
    index_t total = 0;
    bool ok = true;
    PseudoGcroDr<cd> solver(recycle_opts(true));
    for (index_t s = 0; s < 4; ++s) {
      DenseMatrix<cd> x(n, 8);
      const auto st = solver.solve(op, &m, b.block(0, 8 * s, n, 8), x.view());
      total += st.iterations;
      ok &= st.converged;
    }
    rows.push_back({"5) 4x pseudo-BGCRO-DR(20,5), 8 RHS", 8, t.seconds(), total, total / 4, ok});
  }
  // 6) one pseudo-block GCRO-DR with all 32 RHS.
  {
    Timer t;
    DenseMatrix<cd> x(n, nrhs);
    PseudoGcroDr<cd> solver(recycle_opts(false));
    const auto st = solver.solve(op, &m, b.view(), x.view());
    rows.push_back({"6) pseudo-BGCRO-DR(20,5), 32 RHS", 32, t.seconds(), st.iterations, 0,
                    st.converged});
  }
  // 7) four consecutive block GCRO-DR solves with 8 RHS.
  {
    Timer t;
    index_t total = 0;
    bool ok = true;
    GcroDr<cd> solver(recycle_opts(true));
    for (index_t s = 0; s < 4; ++s) {
      DenseMatrix<cd> x(n, 8);
      const auto st = solver.solve(op, &m, b.block(0, 8 * s, n, 8), x.view());
      total += st.iterations;
      ok &= st.converged;
    }
    rows.push_back({"7) 4x BGCRO-DR(20,5), 8 RHS", 8, t.seconds(), total, total / 4, ok});
  }
  // 8) one block GCRO-DR with all 32 RHS.
  {
    Timer t;
    DenseMatrix<cd> x(n, nrhs);
    GcroDr<cd> solver(recycle_opts(false));
    const auto st = solver.solve(op, &m, b.view(), x.view());
    rows.push_back({"8) BGCRO-DR(20,5), 32 RHS", 32, t.seconds(), st.iterations, 0, st.converged});
  }

  bench::header("fig. 8 — timings of the solution phase and speedups vs alternative 1");
  std::printf("  %-36s %3s %10s %8s %10s %8s\n", "alternative", "p", "solve (s)", "iters",
              "it/RHS", "speedup");
  const double reference = rows.front().seconds;
  for (const auto& row : rows) {
    std::printf("  %-36s %3lld %10.2f %8lld %10s %7.1fx%s\n", row.name,
                static_cast<long long>(row.p), row.seconds,
                static_cast<long long>(row.iterations),
                row.per_rhs > 0 ? std::to_string(row.per_rhs).c_str() : "-",
                reference / row.seconds, row.converged ? "" : "  (NOT CONVERGED)");
  }
  std::printf("\npaper speedups: 1.0 | 1.7 | 2.0 | 4.2 | 2.3 | 2.2 | 4.5 (best) | 3.1 "
              "(fewest block iterations)\n");
  return 0;
}
