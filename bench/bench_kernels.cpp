// Section V-B2 kernel study (google-benchmark): the arithmetic-intensity
// advantage of fused multi-RHS kernels.
//
//  * SpMM with p columns vs p separate SpMV sweeps — the sparse
//    matrix-dense matrix product of the paper's cost analysis;
//  * batched dot products (one pass for p lanes) vs p separate passes —
//    the fused reductions of pseudo-block methods;
//  * multi-RHS triangular solves of the sparse factor vs one-by-one — the
//    fig. 6 effect in isolation.
#include <benchmark/benchmark.h>

#include <complex>

#include "common/rng.hpp"
#include "direct/factor.hpp"
#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "la/blas.hpp"

namespace {

using namespace bkr;
using cd = std::complex<double>;

const CsrMatrix<double>& poisson_matrix() {
  static const CsrMatrix<double> a = poisson2d(128, 128);
  return a;
}

const MaxwellProblem& maxwell_problem() {
  static const MaxwellProblem prob = [] {
    MaxwellConfig cfg;
    cfg.n = 10;
    cfg.wavelengths = 1.0;
    cfg.loss = 0.3;
    return maxwell3d(cfg);
  }();
  return prob;
}

const SparseLDLT<cd>& maxwell_factor() {
  static const SparseLDLT<cd> f(maxwell_problem().matrix);
  return f;
}

void BM_SpmmFused(benchmark::State& state) {
  const auto& a = poisson_matrix();
  const index_t n = a.rows(), p = state.range(0);
  DenseMatrix<double> x(n, p), y(n, p);
  Rng rng(1);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) x(i, c) = rng.scalar<double>();
  for (auto _ : state) {
    a.spmm(x.view(), y.view());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * p);
}
BENCHMARK(BM_SpmmFused)->Arg(1)->Arg(4)->Arg(16)->Arg(32);

void BM_SpmvColumnwise(benchmark::State& state) {
  const auto& a = poisson_matrix();
  const index_t n = a.rows(), p = state.range(0);
  DenseMatrix<double> x(n, p), y(n, p);
  Rng rng(1);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) x(i, c) = rng.scalar<double>();
  for (auto _ : state) {
    for (index_t c = 0; c < p; ++c) a.spmv(x.col(c), y.col(c));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * p);
}
BENCHMARK(BM_SpmvColumnwise)->Arg(4)->Arg(16)->Arg(32);

void BM_BatchedDots(benchmark::State& state) {
  const index_t n = 1 << 16, p = state.range(0);
  DenseMatrix<double> x(n, p), y(n, p);
  Rng rng(2);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) {
      x(i, c) = rng.scalar<double>();
      y(i, c) = rng.scalar<double>();
    }
  std::vector<double> out(static_cast<size_t>(p));
  for (auto _ : state) {
    for (index_t c = 0; c < p; ++c) out[size_t(c)] = real_part(dot<double>(n, x.col(c), y.col(c)));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * p);
}
BENCHMARK(BM_BatchedDots)->Arg(1)->Arg(8)->Arg(32);

void BM_DirectSolveBlock(benchmark::State& state) {
  const auto& f = maxwell_factor();
  const index_t n = f.n(), p = state.range(0);
  DenseMatrix<cd> b(n, p);
  Rng rng(3);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) b(i, c) = rng.scalar<cd>();
  DenseMatrix<cd> x(n, p);
  for (auto _ : state) {
    copy_into<cd>(b.view(), x.view());
    f.solve(x.view());
    benchmark::DoNotOptimize(x.data());
  }
  // RHS solved per second is the fig. 6 efficiency axis.
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_DirectSolveBlock)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_DirectSolveOneByOne(benchmark::State& state) {
  const auto& f = maxwell_factor();
  const index_t n = f.n(), p = state.range(0);
  DenseMatrix<cd> b(n, p);
  Rng rng(3);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) b(i, c) = rng.scalar<cd>();
  DenseMatrix<cd> x(n, p);
  for (auto _ : state) {
    copy_into<cd>(b.view(), x.view());
    for (index_t c = 0; c < p; ++c) f.solve(x.block(0, c, n, 1));
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_DirectSolveOneByOne)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
