// Hot-kernel trajectory bench: serial (legacy, no executor) vs the
// KernelExecutor paths at 1/2/4/hardware lanes, per kernel and shape.
//
// This is the machine-readable companion of the section V-B2 kernel
// study: the same fused multi-RHS kernels (SpMM, batched reductions,
// block trsm), now also the thread fan-out of the parallel kernel layer.
// Output is BENCH_kernels.json (schema "bkr-bench-kernels-1", see
// bench_util.hpp); tools/bench_check validates the schema and gates
// regressions against the committed baseline.
//
// On a single-core host the parallel rows land at or slightly above the
// serial ones (pool dispatch overhead, nothing to fan out to); the
// speedup column only becomes meaningful on multi-core hardware. The
// committed baseline records the calibration probe so the checker can
// normalize across hosts either way.
//
// Usage: bench_kernels [--smoke] [--reps K] [--out FILE]
//   --smoke   fewer repetitions (tier-1 gate); identical shapes and keys,
//             so the smoke run compares against the full-mode baseline
//   --reps K  override the repetition count
//   --out     write the JSON there instead of BENCH_kernels.json
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>  // bkr-lint: allow(raw-new-delete) replaceable allocation hooks
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/workspace.hpp"
#include "fem/poisson2d.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "parallel/kernel_executor.hpp"
#include "sparse/csr.hpp"

// Process-wide allocation counter behind the alloc_churn rows: replaceable
// global operator new/delete that count every heap allocation, so a solver
// iterate loop that touches the allocator cannot hide. The hooks stay
// installed for the timing rows too; one relaxed fetch_add is noise next to
// malloc itself.
std::atomic<std::uint64_t> g_alloc_count{0};

void* operator new(std::size_t sz) {  // bkr-lint: allow(raw-new-delete) counting hook
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(sz == 0 ? 1 : sz);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }  // bkr-lint: allow(raw-new-delete) counting hook
void operator delete(void* p) noexcept { std::free(p); }  // bkr-lint: allow(raw-new-delete) counting hook
void operator delete[](void* p) noexcept { std::free(p); }  // bkr-lint: allow(raw-new-delete) counting hook
void operator delete(void* p, std::size_t) noexcept { std::free(p); }  // bkr-lint: allow(raw-new-delete) counting hook
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }  // bkr-lint: allow(raw-new-delete) counting hook

namespace {

using namespace bkr;

// Steady-state allocations per solver iteration (DESIGN.md §11): run the
// same solve three times against one warmed workspace, varying only the
// iteration budget — warm-up at the larger budget so every workspace slot
// reaches its per-cycle maximum shape, then count a short and a long solve.
// The budget difference stays inside one restart cycle, so per-solve and
// per-cycle costs appear identically in both counted runs and cancel; what
// remains is the allocator traffic of the extra iterations alone. The gate
// in bench_check requires exactly zero.
template <class SolveFn>
double alloc_churn_per_iteration(SolveFn&& solve, index_t short_budget, index_t long_budget) {
  solve(long_budget);  // warm-up
  const std::uint64_t a0 = g_alloc_count.load();
  solve(short_budget);
  const std::uint64_t a1 = g_alloc_count.load();
  solve(long_budget);
  const std::uint64_t a2 = g_alloc_count.load();
  const std::int64_t extra = std::int64_t(a2 - a1) - std::int64_t(a1 - a0);
  return double(extra) / double(long_budget - short_budget);
}

// Lane counts benchmarked on top of the legacy serial row (threads == 0).
std::vector<index_t> bench_lanes() {
  std::vector<index_t> lanes{1, 2, 4};
  const index_t hw = index_t(std::thread::hardware_concurrency());
  if (hw > 0 && hw != 1 && hw != 2 && hw != 4) lanes.push_back(hw);
  return lanes;
}

struct Bench {
  int reps;
  std::vector<bench::KernelBenchEntry> entries;

  // Time `fn(ex)` once per thread count: ex == nullptr for the legacy
  // serial row, then one executor per lane count. Cutoffs are forced low
  // so the executor path is what gets measured, not the cutoff fallback.
  template <class Fn>
  void kernel(const std::string& name, const std::string& shape, Fn&& fn) {
    entries.push_back({name, shape, 0, bench::time_median(reps, [&] { fn(nullptr); }), reps});
    for (const index_t lanes : bench_lanes()) {
      KernelExecutor ex(lanes, KernelCutoffs{1, 1, 1});
      entries.push_back({name, shape, lanes, bench::time_median(reps, [&] { fn(&ex); }), reps});
    }
  }
};

DenseMatrix<double> random_block(index_t n, index_t p, unsigned seed) {
  DenseMatrix<double> m(n, p);
  Rng rng(seed);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) m(i, c) = rng.scalar<double>();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool smoke = false;
  int reps = 9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_kernels [--smoke] [--reps K] [--out FILE]\n");
      return 2;
    }
  }
  if (smoke && reps == 9) reps = 3;
  if (reps < 1) reps = 1;

  // Calibration probe: a fixed serial reduction, so the checker can
  // normalize medians by relative machine speed across hosts.
  const index_t cal_n = 1 << 20;
  std::vector<double> cx(size_t(cal_n), 1.000000059604645), cy(size_t(cal_n), 0.999999940395355);
  const double calibration = bench::time_median(5, [&] {
    volatile double s = real_part(dot<double>(cal_n, cx.data(), cy.data()));
    (void)s;
  });

  Bench b{reps, {}};

  // SpMV / SpMM: fig-2 Poisson operator, single and fused multi-RHS.
  const CsrMatrix<double> a = poisson2d(96, 96);
  const index_t n = a.rows();
  {
    const DenseMatrix<double> x1 = random_block(n, 1, 1);
    DenseMatrix<double> y1(n, 1);
    b.kernel("spmv", "poisson96 p=1",
             [&](const KernelExecutor* ex) { a.spmv(x1.col(0), y1.col(0), ex); });
    const DenseMatrix<double> x8 = random_block(n, 8, 2);
    DenseMatrix<double> y8(n, 8);
    b.kernel("spmm", "poisson96 p=8",
             [&](const KernelExecutor* ex) { a.spmm(x8.view(), y8.view(), ex); });
  }

  // gemm: the two shapes on every solver's hot path — the CGS projection
  // coefficients (C^H x, tall-skinny inputs) and the basis/solution
  // update (tall-skinny times small square).
  {
    const index_t s = 16, p = 8;
    const DenseMatrix<double> v = random_block(n, s, 3);
    const DenseMatrix<double> w = random_block(n, p, 4);
    DenseMatrix<double> h(s, p);
    b.kernel("gemm", "proj CN n=9216 s=16 p=8", [&](const KernelExecutor* ex) {
      gemm<double>(Trans::C, Trans::N, 1.0, v.view(), w.view(), 0.0, h.view(), ex);
    });
    const DenseMatrix<double> coef = random_block(s, p, 5);
    DenseMatrix<double> upd(n, p);
    b.kernel("gemm", "update NN n=9216 s=16 p=8", [&](const KernelExecutor* ex) {
      gemm<double>(Trans::N, Trans::N, 1.0, v.view(), coef.view(), 0.0, upd.view(), ex);
    });
  }

  // herk (the CholQR gram matrix) and the paired triangular solve.
  {
    const index_t p = 8;
    const DenseMatrix<double> v = random_block(n, p, 6);
    DenseMatrix<double> g(p, p);
    b.kernel("herk", "gram n=9216 p=8",
             [&](const KernelExecutor* ex) { gram<double>(v.view(), g.view(), ex); });
    DenseMatrix<double> r = random_block(p, p, 7);
    for (index_t j = 0; j < p; ++j) {
      r(j, j) = 4.0 + r(j, j);
      for (index_t i = j + 1; i < p; ++i) r(i, j) = 0.0;
    }
    DenseMatrix<double> xr = random_block(n, p, 8);
    b.kernel("trsm", "right n=9216 p=8", [&](const KernelExecutor* ex) {
      trsm_right_upper<double>(r.view(), xr.view(), ex);
    });
  }

  // Fused reductions: batched dot and per-column norms.
  {
    const index_t rn = 1 << 19;
    std::vector<double> x(static_cast<size_t>(rn)), y(static_cast<size_t>(rn));
    Rng rng(9);
    for (auto& v : x) v = rng.scalar<double>();
    for (auto& v : y) v = rng.scalar<double>();
    b.kernel("dot", "n=524288", [&](const KernelExecutor* ex) {
      volatile double s = real_part(dot<double>(rn, x.data(), y.data(), ex));
      (void)s;
    });
    const index_t p = 8;
    const DenseMatrix<double> m = random_block(n, p, 10);
    std::vector<double> norms(static_cast<size_t>(p));
    b.kernel("norms", "cols n=9216 p=8", [&](const KernelExecutor* ex) {
      column_norms<double>(m.view(), norms.data(), ex);
    });
  }

  // Alloc churn: the workspace-hoisting claim of DESIGN.md §11, measured.
  // Both rows must be exactly 0 allocations per steady-state iteration;
  // bench_check fails the gate on anything else. Budgets are chosen so the
  // short and long runs end inside the same restart cycle (restart 30,
  // GCRO-DR cycle 2 has 30 - 4 = 26 steps): the counted difference is
  // 20 interior iterations with no cycle boundary in it.
  {
    const CsrOperator<double> op(a);
    const DenseMatrix<double> rhs = random_block(n, 2, 11);
    const index_t short_budget = 35, long_budget = 55;

    SolverWorkspace<double> ws_gmres;
    const double gmres_churn = alloc_churn_per_iteration(
        [&](index_t budget) {
          SolverOptions o;
          o.restart = 30;
          o.tol = 0.0;  // never converges: the budget decides the length
          o.max_iterations = budget;
          o.record_history = false;
          o.recovery.early_restart = false;  // keep cycle boundaries fixed
          o.workspace = &ws_gmres;
          DenseMatrix<double> x(n, 2);
          block_gmres<double>(op, nullptr, rhs.view(), x.view(), o);
        },
        short_budget, long_budget);
    b.entries.push_back(
        {"alloc_churn", "gmres(30) steady p=2", 0, gmres_churn, int(long_budget - short_budget)});

    SolverWorkspace<double> ws_gcrodr;
    const double gcrodr_churn = alloc_churn_per_iteration(
        [&](index_t budget) {
          SolverOptions o;
          o.restart = 30;
          o.recycle = 4;
          o.tol = 0.0;
          o.max_iterations = budget;
          o.record_history = false;
          o.recovery.early_restart = false;
          o.workspace = &ws_gcrodr;
          // A fresh solver per run keeps the counted solves structurally
          // identical (first cycle + Ritz seed + projected cycle); the
          // workspace outside carries the steady-state capacity.
          GcroDr<double> solver(o);
          DenseMatrix<double> x(n, 2);
          solver.solve(op, nullptr, rhs.view(), x.view());
        },
        short_budget, long_budget);
    b.entries.push_back({"alloc_churn", "gcrodr(30,4) steady p=2", 0, gcrodr_churn,
                         int(long_budget - short_budget)});
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_kernels: cannot open %s\n", out_path.c_str());
    return 1;
  }
  bench::write_kernel_bench_json(out, smoke ? "smoke" : "full",
                                 index_t(std::thread::hardware_concurrency()), calibration,
                                 b.entries);
  std::printf("bench_kernels: wrote %zu entries (%s, reps=%d, calibration %.3e s) to %s\n",
              b.entries.size(), smoke ? "smoke" : "full", reps, calibration, out_path.c_str());
  return 0;
}
