#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the release test suite, plus an
# ASan+UBSan pass over the telemetry/invariant suites so memory errors in
# the instrumented hot paths fail the gate rather than the field.
#
# Usage: scripts/tier1.sh [--full-sanitize]
#   --full-sanitize  run the ENTIRE suite under ASan+UBSan (slower)
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE_FILTER="Trace|CApi"
if [[ "${1:-}" == "--full-sanitize" ]]; then
  SANITIZE_FILTER=""
fi

echo "==> release build + full test suite"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "==> ASan+UBSan build + ${SANITIZE_FILTER:-all} tests"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined,float-divide-by-zero,float-cast-overflow -fno-omit-frame-pointer -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined,float-divide-by-zero,float-cast-overflow"
cmake --build build-asan -j --target unit_tests
if [[ -n "$SANITIZE_FILTER" ]]; then
  ctest --test-dir build-asan --output-on-failure -j 4 -R "$SANITIZE_FILTER"
else
  ctest --test-dir build-asan --output-on-failure -j 4
fi

echo "==> chaos smoke: fault-injection sweep under ASan+UBSan"
# The resilience suites drive every solver through injected faults; running
# them sanitized proves recovery paths never trade a crash for a leak or UB.
ctest --test-dir build-asan --output-on-failure -j 4 -R "Resilience|Chaos"

echo "==> session smoke: recycle-cache warm start across processes"
# The sequence driver replays a frequency-sweep workload through the
# session/cache service layer: once without a cache, once populating a
# fresh cache file, once loading it back — the latter two assert that
# warm-started sessions beat their cold reference on iterations.
cmake --build build -j --target example_sequence_driver
SESSION_CACHE="build/tier1_session_cache.bkrc"
rm -f "$SESSION_CACHE"
./build/examples/example_sequence_driver -grid 48 -no_cache > /dev/null
./build/examples/example_sequence_driver -grid 48 \
  -cache_file "$SESSION_CACHE" -assert_improvement > /dev/null
./build/examples/example_sequence_driver -grid 48 -method pbgcrodr \
  -cache_file "$SESSION_CACHE" -assert_improvement > /dev/null

echo "==> bench smoke: kernel trajectory schema + regression gate"
cmake --build build -j --target bench_kernels bench_check
./build/bench/bench_kernels --smoke --out build/BENCH_kernels_smoke.json
./build/tools/bench_check build/BENCH_kernels_smoke.json \
  --baseline BENCH_kernels.json --max-regression 0.25

echo "==> sharded smoke: shard-invariance + deflation gates"
# The sharded SPMD sweep (DESIGN.md §13) at reduced size; bench_check
# enforces that iteration counts are identical across shard counts and
# that the subdomain-deflation coarse space strictly beats one-level
# Schwarz on every case.
cmake --build build -j --target bench_fig_sharded
./build/bench/bench_fig_sharded --smoke --out build/BENCH_sharded_smoke.json
./build/tools/bench_check build/BENCH_sharded_smoke.json

echo "==> serve smoke: solve server (pipe mode) under ASan+UBSan"
# Drive the real bkr_serve binary (DESIGN.md §15) through one pipe-mode
# session covering the service surface: a cold gcrodr solve that seeds the
# shared cache, a warm repeat that must hit it, two held pseudo-gmres
# requests flushed into a single width-2 block solve, and an
# expired-deadline refusal. Sanitized, so a leak or UB anywhere in the
# dispatch/batching/cancellation machinery fails the gate.
cmake --build build-asan -j --target bkr_serve
SERVE_BIN=build-asan/tools/bkr_serve
SERVE_OUT=$("$SERVE_BIN" -workers 1 2> /dev/null <<'EOF'
{"op":"solve","id":"cold","matrix":"poisson2d:24","method":"gcrodr"}
{"op":"solve","id":"warm","matrix":"poisson2d:24","method":"gcrodr"}
{"op":"solve","id":"held-a","matrix":"poisson2d:24","method":"pseudo_gmres","tenant":"a","hold":true}
{"op":"solve","id":"held-b","matrix":"poisson2d:24","method":"pseudo_gmres","tenant":"b","hold":true}
{"op":"flush"}
{"op":"solve","id":"late","matrix":"poisson2d:96","method":"gmres","tol":1e-14,"deadline_ms":0}
{"op":"shutdown"}
EOF
)
echo "$SERVE_OUT" | grep -q '"id":"warm".*"warm_start":1' \
  || { echo "serve smoke: warm solve did not warm-start"; exit 1; }
echo "$SERVE_OUT" | grep -q '"id":"held-a".*"batch_width":2' \
  || { echo "serve smoke: held requests were not batched"; exit 1; }
echo "$SERVE_OUT" | grep -q '"id":"late","status":"deadline-exceeded"' \
  || { echo "serve smoke: expired deadline was not refused"; exit 1; }

# Admission control: with one lane and a queue budget of 1, a stuck
# request (tol=0 smoother mode never converges) forces the next arrival
# into an immediate typed refusal; cancelling the stuck one drains it.
SERVE_OUT=$("$SERVE_BIN" -workers 1 -queue 1 2> /dev/null <<'EOF'
{"op":"solve","id":"stuck","matrix":"poisson2d:32","method":"gmres","tol":0,"max_iterations":100000000}
{"op":"solve","id":"burst","matrix":"poisson2d:16","method":"cg"}
{"op":"cancel","id":"stuck"}
{"op":"shutdown"}
EOF
)
echo "$SERVE_OUT" | grep -q '"id":"burst","status":"overloaded"' \
  || { echo "serve smoke: queue overflow was not refused"; exit 1; }
echo "$SERVE_OUT" | grep -q '"id":"stuck","status":"cancelled"' \
  || { echo "serve smoke: cancel did not land"; exit 1; }

# SIGTERM with in-flight work: the drain cancels the straggler, the
# process exits 0, and the cache snapshot it writes is loadable.
SERVE_SNAP=build-asan/tier1_serve_snapshot.bkrc
SERVE_FIFO=build-asan/tier1_serve_fifo
rm -f "$SERVE_SNAP" "$SERVE_FIFO"
mkfifo "$SERVE_FIFO"
"$SERVE_BIN" -workers 1 -cache_file "$SERVE_SNAP" -drain_ms 1000 \
  < "$SERVE_FIFO" > /dev/null 2>&1 &
SERVE_PID=$!
exec 9> "$SERVE_FIFO"
echo '{"op":"solve","id":"seed","matrix":"poisson2d:16","method":"gcrodr"}' >&9
sleep 2
echo '{"op":"solve","id":"stuck","matrix":"poisson2d:32","method":"gmres","tol":0,"max_iterations":100000000}' >&9
sleep 1
kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
exec 9>&-
rm -f "$SERVE_FIFO"
[[ "$SERVE_RC" == 0 ]] \
  || { echo "serve smoke: SIGTERM drain exited $SERVE_RC"; exit 1; }
"$SERVE_BIN" -check_snapshot "$SERVE_SNAP" \
  || { echo "serve smoke: shutdown snapshot not loadable"; exit 1; }

echo "==> static analysis (bkr-lint + bkr-analyze + bkr-hotpath + bkr-fpflow) + TSan concurrency stress"
scripts/analyze.sh --lint --tsan

echo "==> tier-1 OK"
