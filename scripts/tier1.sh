#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the release test suite, plus an
# ASan+UBSan pass over the telemetry/invariant suites so memory errors in
# the instrumented hot paths fail the gate rather than the field.
#
# Usage: scripts/tier1.sh [--full-sanitize]
#   --full-sanitize  run the ENTIRE suite under ASan+UBSan (slower)
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE_FILTER="Trace|CApi"
if [[ "${1:-}" == "--full-sanitize" ]]; then
  SANITIZE_FILTER=""
fi

echo "==> release build + full test suite"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "==> ASan+UBSan build + ${SANITIZE_FILTER:-all} tests"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined,float-divide-by-zero,float-cast-overflow -fno-omit-frame-pointer -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined,float-divide-by-zero,float-cast-overflow"
cmake --build build-asan -j --target unit_tests
if [[ -n "$SANITIZE_FILTER" ]]; then
  ctest --test-dir build-asan --output-on-failure -j 4 -R "$SANITIZE_FILTER"
else
  ctest --test-dir build-asan --output-on-failure -j 4
fi

echo "==> chaos smoke: fault-injection sweep under ASan+UBSan"
# The resilience suites drive every solver through injected faults; running
# them sanitized proves recovery paths never trade a crash for a leak or UB.
ctest --test-dir build-asan --output-on-failure -j 4 -R "Resilience|Chaos"

echo "==> session smoke: recycle-cache warm start across processes"
# The sequence driver replays a frequency-sweep workload through the
# session/cache service layer: once without a cache, once populating a
# fresh cache file, once loading it back — the latter two assert that
# warm-started sessions beat their cold reference on iterations.
cmake --build build -j --target example_sequence_driver
SESSION_CACHE="build/tier1_session_cache.bkrc"
rm -f "$SESSION_CACHE"
./build/examples/example_sequence_driver -grid 48 -no_cache > /dev/null
./build/examples/example_sequence_driver -grid 48 \
  -cache_file "$SESSION_CACHE" -assert_improvement > /dev/null
./build/examples/example_sequence_driver -grid 48 -method pbgcrodr \
  -cache_file "$SESSION_CACHE" -assert_improvement > /dev/null

echo "==> bench smoke: kernel trajectory schema + regression gate"
cmake --build build -j --target bench_kernels bench_check
./build/bench/bench_kernels --smoke --out build/BENCH_kernels_smoke.json
./build/tools/bench_check build/BENCH_kernels_smoke.json \
  --baseline BENCH_kernels.json --max-regression 0.25

echo "==> sharded smoke: shard-invariance + deflation gates"
# The sharded SPMD sweep (DESIGN.md §13) at reduced size; bench_check
# enforces that iteration counts are identical across shard counts and
# that the subdomain-deflation coarse space strictly beats one-level
# Schwarz on every case.
cmake --build build -j --target bench_fig_sharded
./build/bench/bench_fig_sharded --smoke --out build/BENCH_sharded_smoke.json
./build/tools/bench_check build/BENCH_sharded_smoke.json

echo "==> static analysis (bkr-lint + bkr-analyze + bkr-hotpath + bkr-fpflow) + TSan concurrency stress"
scripts/analyze.sh --lint --tsan

echo "==> tier-1 OK"
