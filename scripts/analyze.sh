#!/usr/bin/env bash
# Static analysis and sanitizer matrix for the bkrylov tree.
#
# Stages (all run by default; flags select a subset):
#   --lint   bkr-lint self-test + project scan + bkr-analyze cross-TU
#            project model + bkr-hotpath call-graph hot-path discipline +
#            bkr-fpflow precision-flow walk + baseline hygiene, all
#            against the committed baseline
#   --tidy   clang-tidy over src/ using .clang-tidy (skipped with a notice
#            when clang-tidy is not installed — the container ships g++ only)
#   --asan   ASan+UBSan build + full test suite (build-asan/)
#   --tsan   TSan build + concurrency stress suites (build-tsan/)
#
# Usage: scripts/analyze.sh [--lint] [--tidy] [--asan] [--tsan]
#                           [--sarif out.sarif]
#   --sarif FILE  also export the combined lint run's unsuppressed
#                 findings as SARIF 2.1.0 to FILE (implies --lint)
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_LINT=0 RUN_TIDY=0 RUN_ASAN=0 RUN_TSAN=0
SARIF_OUT=""
if [[ $# -eq 0 ]]; then
  RUN_LINT=1 RUN_TIDY=1 RUN_ASAN=1 RUN_TSAN=1
fi
while [[ $# -gt 0 ]]; do
  case "$1" in
    --lint) RUN_LINT=1 ;;
    --tidy) RUN_TIDY=1 ;;
    --asan) RUN_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --sarif)
      [[ $# -ge 2 ]] || { echo "--sarif needs a file argument" >&2; exit 2; }
      SARIF_OUT="$2"
      RUN_LINT=1
      shift
      ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done

if [[ $RUN_LINT -eq 1 ]]; then
  echo "==> bkr-lint"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build --target bkr_lint -j
  ./build/tools/bkr_lint --self-test
  if [[ -n "$SARIF_OUT" ]]; then
    ./build/tools/bkr_lint --baseline tools/bkr_lint_baseline.txt \
      --sarif "$SARIF_OUT" .
    echo "    SARIF written to $SARIF_OUT"
  else
    ./build/tools/bkr_lint --baseline tools/bkr_lint_baseline.txt .
  fi
  echo "==> bkr-analyze (cross-TU project model)"
  ./build/tools/bkr_lint --analyze --baseline tools/bkr_lint_baseline.txt .
  echo "==> bkr-hotpath (call-graph hot-path discipline)"
  ./build/tools/bkr_lint --hotpath --baseline tools/bkr_lint_baseline.txt .
  echo "==> bkr-fpflow (precision-flow & numerical safety)"
  ./build/tools/bkr_lint --fpflow --baseline tools/bkr_lint_baseline.txt .
  echo "==> baseline hygiene (--baseline-check)"
  ./build/tools/bkr_lint --baseline-check tools/bkr_lint_baseline.txt .
fi

if [[ $RUN_TIDY -eq 1 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy"
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null  # refresh compile_commands.json
    mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' | sort)
    clang-tidy -p build --quiet "${TIDY_SOURCES[@]}"
  else
    echo "==> clang-tidy not installed; skipping (config in .clang-tidy applies when available)"
  fi
fi

if [[ $RUN_ASAN -eq 1 ]]; then
  echo "==> ASan+UBSan suite"
  cmake --preset asan-ubsan >/dev/null
  cmake --build --preset asan-ubsan -j --target unit_tests
  ctest --preset asan-ubsan
fi

if [[ $RUN_TSAN -eq 1 ]]; then
  echo "==> TSan concurrency stress"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j --target unit_tests
  ctest --preset tsan
fi

echo "==> analyze OK"
